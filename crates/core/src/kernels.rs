//! The GPU kernels of the applications.
//!
//! Each kernel is real Rust executed once per simulated GPU thread;
//! memory traffic goes through [`ThreadCtx`] so the timing model sees
//! the true access pattern (coalesced input reads, scattered table
//! probes, block-parallel AES, per-packet HMAC, per-packet flow
//! hashing for the stateful NFs).

use ps_crypto::aes::{ctr_counter_block, Aes128};
use ps_crypto::hmac::HmacSha1;
use ps_gpu::{DeviceBuffer, Kernel, Slots, ThreadCtx};
use ps_lookup::dir24::Dir24Layout;
use ps_lookup::mem::TableMem;
use ps_lookup::waldvogel::V6Layout;
use ps_net::FlowKey;
use ps_openflow::WildcardTable;

/// Adapter: a `TableMem` view over device memory for one buffer, so
/// the *same* lookup code runs on host slices and GPU threads.
pub struct CtxMem<'c, 'a> {
    ctx: &'c mut ThreadCtx<'a>,
    buf: DeviceBuffer,
}

impl<'c, 'a> CtxMem<'c, 'a> {
    /// View `buf` through `ctx`.
    pub fn new(ctx: &'c mut ThreadCtx<'a>, buf: DeviceBuffer) -> Self {
        CtxMem { ctx, buf }
    }
}

impl TableMem for CtxMem<'_, '_> {
    fn read_u16(&mut self, off: usize) -> u16 {
        self.ctx.read_u16(&self.buf, off)
    }
    fn read_u32(&mut self, off: usize) -> u32 {
        self.ctx.read_u32(&self.buf, off)
    }
    fn read_bytes<const N: usize>(&mut self, off: usize) -> [u8; N] {
        self.ctx.read(&self.buf, off)
    }
}

/// IPv4 forwarding-table lookup: one thread per packet (§5.5 "map
/// each packet into an independent GPU thread").
pub struct Ipv4Kernel {
    /// DIR-24-8 image location in device memory.
    pub table: DeviceBuffer,
    /// Image layout.
    pub layout: Dir24Layout,
    /// Input: u32 destination addresses, addressed per [`Slots`]
    /// (packed column or frame-resident, per the staging mode).
    pub input: DeviceBuffer,
    /// Where thread `tid` finds its destination address in `input`.
    pub slots: Slots,
    /// Output: packed u16 next hops.
    pub output: DeviceBuffer,
    /// Valid packets.
    pub n: u32,
}

impl Kernel for Ipv4Kernel {
    fn name(&self) -> &str {
        "ipv4-dir24"
    }

    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.n {
            return;
        }
        let addr = ctx.read_u32(&self.input, self.slots.at(tid));
        ctx.alu(20); // index arithmetic + branch
        let hop = {
            let mut mem = CtxMem::new(ctx, self.table);
            ps_lookup::dir24::lookup(&self.layout, &mut mem, addr)
        };
        // Spilled entries take a second dependent access; the trace
        // records it automatically. Record the branch for divergence.
        ctx.branch(hop & 0x8000 == 0);
        ctx.write(&self.output, tid as usize * 2, &hop.to_le_bytes());
    }
}

/// IPv6 lookup: binary search on prefix lengths, one thread per
/// packet; seven dependent probes dominate (§6.2.2).
pub struct Ipv6Kernel {
    /// Waldvogel image location.
    pub table: DeviceBuffer,
    /// Level directory (kernel parameters, not device memory).
    pub layout: V6Layout,
    /// Input: 16 B destination addresses, addressed per [`Slots`].
    pub input: DeviceBuffer,
    /// Where thread `tid` finds its destination address in `input`.
    pub slots: Slots,
    /// Output: packed u16 next hops.
    pub output: DeviceBuffer,
    /// Valid packets.
    pub n: u32,
}

impl Kernel for Ipv6Kernel {
    fn name(&self) -> &str {
        "ipv6-waldvogel"
    }

    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.n {
            return;
        }
        let raw: [u8; 16] = self.slots.read(ctx, &self.input, tid);
        let addr = u128::from_be_bytes(raw);
        // Hashing at each probe level: ~16 ALU ops per FNV over the
        // masked key, 7 levels.
        ctx.alu(7 * 16 + 30);
        let hop = {
            let mut mem = CtxMem::new(ctx, self.table);
            ps_lookup::waldvogel::lookup(&self.layout, &mut mem, addr)
        };
        ctx.write(&self.output, tid as usize * 2, &hop.to_le_bytes());
    }
}

/// OpenFlow offload: per-packet flow-key hash + wildcard linear
/// search (§6.2.3 "we offload hash value calculation and the wildcard
/// matching to GPU"). Exact-match resolution stays on the CPU.
pub struct OpenFlowKernel {
    /// Serialized wildcard table (in device global memory).
    pub wildcard: DeviceBuffer,
    /// Number of wildcard entries.
    pub n_wildcard: usize,
    /// When the table fits in the SM's 48 KB shared memory (§2.1),
    /// thread blocks stage it there once and scan without global
    /// traffic; this holds the staged copy. `None` = scan global
    /// memory (large tables).
    pub shared_image: Option<std::sync::Arc<Vec<u8>>>,
    /// Input: 32 B flow keys (31 B canonical + pad), addressed per
    /// [`Slots`].
    pub input: DeviceBuffer,
    /// Where thread `tid` finds its flow key in `input`.
    pub slots: Slots,
    /// Output per packet: `hash:u32 action:u16 scanned:u16`.
    pub output: DeviceBuffer,
    /// Valid packets.
    pub n: u32,
}

/// Wildcard-table bytes that fit in shared memory alongside the
/// block's other needs (the GTX480 has 48 KB per SM).
pub const OF_SHARED_LIMIT: usize = 32 << 10;

/// Sentinel for "no wildcard entry matched".
pub const OF_NO_MATCH: u16 = 0xFFFD;

impl Kernel for OpenFlowKernel {
    fn name(&self) -> &str {
        "openflow-hash+wildcard"
    }

    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.n {
            return;
        }
        let raw: [u8; 32] = self.slots.read(ctx, &self.input, tid);
        // FNV-1a over 31 bytes: ~2 ops/byte.
        ctx.alu(62);
        let mut h: u32 = 0x811c_9dc5;
        for &b in &raw[..31] {
            h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
        }
        let key = flow_key_from_bytes(&raw);
        let (action, scanned) = match &self.shared_image {
            Some(image) => {
                // Shared-memory scan: issue cost only.
                let mut mem = ps_lookup::mem::SliceMem::new(image);
                let (a, scanned) = WildcardTable::lookup_image(&mut mem, 0, self.n_wildcard, &key);
                ctx.shared(4 * scanned as u32);
                (a, scanned)
            }
            None => {
                let mut mem = CtxMem::new(ctx, self.wildcard);
                WildcardTable::lookup_image(&mut mem, 0, self.n_wildcard, &key)
            }
        };
        // ~12 compare ops per scanned entry.
        ctx.alu(12 * scanned as u32);
        ctx.branch(action.is_some());
        let o = tid as usize * 8;
        ctx.write_u32(&self.output, o, h);
        let act = action.unwrap_or(OF_NO_MATCH);
        ctx.write(&self.output, o + 4, &act.to_le_bytes());
        ctx.write(&self.output, o + 6, &(scanned as u16).to_le_bytes());
    }
}

/// Rebuild a [`FlowKey`] from its canonical 31-byte serialization.
pub fn flow_key_from_bytes(b: &[u8; 32]) -> FlowKey {
    FlowKey {
        in_port: u16::from_be_bytes([b[0], b[1]]),
        dl_src: b[2..8].try_into().expect("fixed"),
        dl_dst: b[8..14].try_into().expect("fixed"),
        dl_vlan: u16::from_be_bytes([b[14], b[15]]),
        dl_type: u16::from_be_bytes([b[16], b[17]]),
        nw_src: u32::from_be_bytes([b[18], b[19], b[20], b[21]]),
        nw_dst: u32::from_be_bytes([b[22], b[23], b[24], b[25]]),
        nw_proto: b[26],
        tp_src: u16::from_be_bytes([b[27], b[28]]),
        tp_dst: u16::from_be_bytes([b[29], b[30]]),
    }
}

/// Flow-hash offload for the stateful NFs (NAT, L4 load balancer):
/// one thread per packet hashes the staged canonical 5-tuple bytes
/// with the cuckoo table's hash function. The host applies the
/// stateful table operations in arrival order with the hash
/// precomputed — the same split as OpenFlow's hash offload (§6.2.3).
pub struct FlowHashKernel {
    /// Input: 16 B key slots (13 canonical tuple bytes + pad),
    /// addressed per [`Slots`].
    pub input: DeviceBuffer,
    /// Where thread `tid` finds its key slot in `input`.
    pub slots: Slots,
    /// Output: packed u64 hashes.
    pub output: DeviceBuffer,
    /// Valid packets.
    pub n: u32,
}

impl Kernel for FlowHashKernel {
    fn name(&self) -> &str {
        "flow-hash"
    }

    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.n {
            return;
        }
        let raw: [u8; 16] = self.slots.read(ctx, &self.input, tid);
        // Two splitmix64 rounds over the packed words: ~24 ALU ops.
        ctx.alu(24);
        let key: [u8; 13] = raw[..13].try_into().expect("fixed");
        let h = ps_flow::flow_hash_bytes(&key);
        ctx.write(&self.output, tid as usize * 8, &h.to_le_bytes());
    }
}

/// Per-packet staging parameters for the IPsec kernels: where each
/// packet's ESP region lives in the packed payload buffer.
#[derive(Debug, Clone, Copy)]
pub struct EspSlot {
    /// Byte offset of the packet's ESP region (16-aligned).
    pub base: u32,
    /// Ciphertext length (multiple of 16).
    pub ct_len: u32,
    /// Per-packet CTR IV.
    pub iv: [u8; 8],
}

/// AES-128-CTR at AES-block granularity: one thread per 16 B block
/// (§6.2.4 "we chop packets into AES blocks (16B) and map each block
/// to one GPU thread").
pub struct IpsecAesKernel<'a> {
    /// The block cipher (round keys live in shared memory on a real
    /// GPU; functional state here). Borrowed from the SA so the key
    /// schedule is expanded once, not per launch.
    pub aes: &'a Aes128,
    /// The SA's CTR nonce.
    pub nonce: u32,
    /// Packed ESP regions.
    pub payload: DeviceBuffer,
    /// Per-block map: `pkt_idx << 8 | block_idx`.
    pub block_info: DeviceBuffer,
    /// Per-packet slots: `[base:u32 ct_len:u32 iv:8B]` (16 B each).
    pub params: DeviceBuffer,
    /// Total AES blocks.
    pub n_blocks: u32,
}

impl Kernel for IpsecAesKernel<'_> {
    fn name(&self) -> &str {
        "ipsec-aes-ctr"
    }

    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.n_blocks {
            return;
        }
        let info = ctx.read_u32(&self.block_info, tid as usize * 4);
        let pkt = (info >> 8) as usize;
        let blk = info & 0xFF;
        let p: [u8; 16] = ctx.read(&self.params, pkt * 16);
        let base = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        let iv: [u8; 8] = p[8..16].try_into().expect("fixed");
        // Keystream: one AES encryption over the counter block. With
        // shared-memory T-tables this is ~4 lookups + 4 xors per round
        // on a real GPU; charge ~20 issue ops per round.
        ctx.shared(10 * 20);
        let ks = self
            .aes
            .encrypt(&ctr_counter_block(self.nonce, &iv, blk + 1));
        let off = base + 16 + blk as usize * 16; // skip SPI/seq + IV
        let mut data: [u8; 16] = ctx.read(&self.payload, off);
        for (d, k) in data.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        ctx.write(&self.payload, off, &data);
    }
}

/// HMAC-SHA1 at packet granularity ("SHA1 cannot be parallelized at
/// the SHA1 block level due to data dependency; we parallelize SHA1
/// at the packet level", §6.2.4). Must run *after* the AES kernel —
/// ESP is encrypt-then-MAC.
pub struct IpsecHmacKernel<'a> {
    /// Keyed HMAC context (pads precomputed once per SA).
    pub hmac: &'a HmacSha1,
    /// Packed ESP regions (already encrypted).
    pub payload: DeviceBuffer,
    /// Per-packet slots (same layout as the AES kernel's).
    pub params: DeviceBuffer,
    /// Packets.
    pub n: u32,
}

impl Kernel for IpsecHmacKernel<'_> {
    fn name(&self) -> &str {
        "ipsec-hmac-sha1"
    }

    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.n {
            return;
        }
        let p: [u8; 16] = ctx.read(&self.params, tid as usize * 16);
        let base = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        let ct_len = u32::from_le_bytes([p[4], p[5], p[6], p[7]]) as usize;
        let auth_len = 16 + ct_len; // SPI+seq+IV+ciphertext

        // Stream the authenticated region in 64 B reads, feeding the
        // MAC incrementally: no per-thread gather buffer.
        let mut inner = self.hmac.begin();
        let mut off = base;
        let mut left = auth_len;
        while left >= 64 {
            inner.update(&ctx.read::<64>(&self.payload, off));
            off += 64;
            left -= 64;
        }
        while left >= 16 {
            inner.update(&ctx.read::<16>(&self.payload, off));
            off += 16;
            left -= 16;
        }
        debug_assert_eq!(left, 0, "ESP regions are 16-aligned");

        // ~400 issue ops per SHA-1 compression (80 rounds).
        let comps = ps_crypto::sha1::hmac_compressions(auth_len) as u32;
        ctx.shared(comps * 400);

        let icv = self.hmac.finish96(inner);
        ctx.write(&self.payload, base + auth_len, &icv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_gpu::{kernel, GpuDevice};
    use ps_lookup::dir24::Dir24Table;
    use ps_lookup::route::Route4;

    #[test]
    fn ipv4_kernel_produces_real_lookups() {
        let routes = vec![
            Route4::new(0x0A000000, 8, 1),
            Route4::new(0x0A0B0000, 16, 2),
            Route4::new(0, 0, 7),
        ];
        let table = Dir24Table::build(&routes);
        let mut dev = GpuDevice::gtx480_with_mem(64 << 20);
        let tbuf = dev.mem.alloc(table.image().len());
        dev.mem.write(&tbuf, 0, table.image());
        let input = dev.mem.alloc(4 * 4);
        let output = dev.mem.alloc(4 * 2);
        let addrs: [u32; 4] = [0x0A0B0101, 0x0A111111, 0x01020304, 0xFFFFFFFF];
        for (i, a) in addrs.iter().enumerate() {
            dev.mem.write(&input, i * 4, &a.to_le_bytes());
        }
        let k = Ipv4Kernel {
            table: tbuf,
            layout: table.layout(),
            input,
            slots: Slots::packed(4),
            output,
            n: 4,
        };
        let stats = kernel::execute(&k, &mut dev.mem, 4);
        assert_eq!(stats.threads, 4);
        let hops: Vec<u16> = (0..4)
            .map(|i| {
                let mut b = [0u8; 2];
                dev.mem.read(&output, i * 2, &mut b);
                u16::from_le_bytes(b)
            })
            .collect();
        assert_eq!(hops, vec![2, 1, 7, 7]);
    }

    #[test]
    fn flow_key_round_trips_canonical_bytes() {
        let key = FlowKey {
            in_port: 3,
            dl_src: [1, 2, 3, 4, 5, 6],
            dl_dst: [7, 8, 9, 10, 11, 12],
            dl_vlan: 0xFFFF,
            dl_type: 0x0800,
            nw_src: 0x0A010203,
            nw_dst: 0x0B040506,
            nw_proto: 17,
            tp_src: 1234,
            tp_dst: 80,
        };
        let mut raw = [0u8; 32];
        raw[..31].copy_from_slice(&key.to_bytes());
        assert_eq!(flow_key_from_bytes(&raw), key);
    }
}
