//! Router configuration: the knobs the evaluation sweeps.

use ps_fault::FaultSpec;
use ps_gpu::Staging;
use ps_hw::spec::Testbed;
use ps_io::IoConfig;

/// Execution mode (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Eight worker threads, no GPU.
    CpuOnly,
    /// Six workers + two masters driving the GPUs.
    CpuGpu,
}

/// Classifies latency-critical flows by their RSS hash: a packet is
/// priority when `hash & mask == value`. A pure per-packet function
/// of the flow tuple, so the classification is identical at every
/// shard count (the parity the sharded scheduler needs) and on every
/// replica of the generator stream.
#[derive(Debug, Clone, Copy)]
pub struct PriorityClass {
    /// Hash bits examined.
    pub mask: u32,
    /// Required value of the examined bits.
    pub value: u32,
    /// Fetch cap for the priority lane — deliberately small so
    /// priority packets never wait behind a bulk-sized batch.
    pub cap: usize,
}

impl PriorityClass {
    /// Mark roughly one flow in `n` (a power of two) as priority,
    /// with a fetch cap of 8.
    pub fn one_in(n: u32) -> PriorityClass {
        assert!(n.is_power_of_two(), "priority fraction must be 2^k");
        PriorityClass {
            mask: n - 1,
            value: 0,
            cap: 8,
        }
    }

    /// Does `hash` fall in the priority class?
    #[inline]
    pub fn matches(&self, hash: u32) -> bool {
        hash & self.mask == self.value
    }
}

/// Latency-governance knobs (DESIGN.md §12).
///
/// The default ([`LatencyConfig::off`]) disables every mechanism and
/// leaves the pipeline byte-identical in virtual time to the
/// pre-governance router — the fingerprint pins in `tests/fastpath.rs`
/// and `tests/staging.rs` run that mode.
#[derive(Debug, Clone, Copy)]
pub struct LatencyConfig {
    /// Adaptive batching: scale each RX fetch's cap with the ring's
    /// depth and skip the interrupt-moderation floor while the queue
    /// is shallow. Shallow queue → small batches and eager interrupts
    /// (latency regime); deep queue → the full 64-packet cap and
    /// moderated interrupts (throughput regime). Self-stabilizing:
    /// overload grows the queues, which grows the batches back to the
    /// paper's operating point.
    pub adaptive_batch: bool,
    /// Floor of the adaptive fetch cap.
    pub min_batch: usize,
    /// Ring depth per unit of adaptive cap: `cap = depth /
    /// depth_per_cap`, clamped to `[min_batch, io.batch_cap]`.
    pub depth_per_cap: usize,
    /// Priority-lane classifier; [`None`] means no priority lane.
    pub priority: Option<PriorityClass>,
}

impl LatencyConfig {
    /// Everything off: the paper's fixed-cap, moderated pipeline.
    pub fn off() -> LatencyConfig {
        LatencyConfig {
            adaptive_batch: false,
            min_batch: 4,
            depth_per_cap: 4,
            priority: None,
        }
    }

    /// Adaptive batching on with the default scaling.
    pub fn adaptive() -> LatencyConfig {
        LatencyConfig {
            adaptive_batch: true,
            ..LatencyConfig::off()
        }
    }

    /// This config with a priority lane for ~one flow in `n`.
    pub fn with_priority(mut self, n: u32) -> LatencyConfig {
        self.priority = Some(PriorityClass::one_in(n));
        self
    }
}

impl Default for LatencyConfig {
    fn default() -> LatencyConfig {
        LatencyConfig::off()
    }
}

/// Full router configuration.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// CPU-only or CPU+GPU.
    pub mode: Mode,
    /// Packet I/O engine knobs (batch cap, NUMA placement).
    pub io: IoConfig,
    /// Hardware constants.
    pub testbed: Testbed,
    /// NUMA nodes simulated (2 on the paper box; 1 for the
    /// single-core experiments).
    pub nodes: usize,
    /// Worker threads per node (3 in CPU+GPU mode, 4 in CPU-only).
    pub workers_per_node: usize,
    /// Active 10 GbE ports total (8 on the paper box; 2 in Fig. 5).
    pub ports: u16,
    /// Concurrent copy & execution (§5.4; on for IPsec only).
    pub concurrent_copy: bool,
    /// Gather/scatter at the master (§5.4).
    pub gather: bool,
    /// Maximum chunks gathered into one shading step.
    pub max_gather_chunks: usize,
    /// Chunk pipelining depth per worker (1 = disabled, §5.4).
    pub pipeline_depth: usize,
    /// Opportunistic offloading (§7): small chunks take the CPU path.
    pub opportunistic: bool,
    /// Chunk-size threshold below which opportunistic offloading
    /// stays on the CPU.
    pub opportunistic_threshold: usize,
    /// Device memory to allocate per simulated GPU (bytes). Sized to
    /// the workload to keep host memory use reasonable.
    pub gpu_mem_bytes: usize,
    /// How kernel input columns reach device memory (SoA gather by
    /// default; `Frames`/`DirectDma` are ablation modes, §4.3.1 and
    /// the NaNet-style direct path).
    pub staging: Staging,
    /// Fault injection: all-zero chances (the default) arm no plan
    /// and leave the pipeline byte-identical to the fault-free seed.
    pub faults: FaultSpec,
    /// Latency governance (adaptive batching, priority lanes);
    /// [`LatencyConfig::off`] by default.
    pub latency: LatencyConfig,
}

impl RouterConfig {
    /// The paper's CPU+GPU configuration.
    pub fn paper_gpu() -> RouterConfig {
        RouterConfig {
            mode: Mode::CpuGpu,
            io: IoConfig::paper(),
            testbed: Testbed::paper(),
            nodes: 2,
            workers_per_node: 3,
            ports: 8,
            concurrent_copy: false,
            gather: true,
            max_gather_chunks: 24,
            pipeline_depth: 8,
            opportunistic: false,
            opportunistic_threshold: 16,
            gpu_mem_bytes: 128 << 20,
            staging: Staging::Soa,
            faults: FaultSpec::none(),
            latency: LatencyConfig::off(),
        }
    }

    /// The paper's CPU-only configuration (8 workers).
    pub fn paper_cpu() -> RouterConfig {
        RouterConfig {
            mode: Mode::CpuOnly,
            workers_per_node: 4,
            ..RouterConfig::paper_gpu()
        }
    }

    /// Figure 5's setup: one core, two ports, batch cap swept.
    pub fn fig5(batch_cap: usize) -> RouterConfig {
        RouterConfig {
            mode: Mode::CpuOnly,
            io: IoConfig {
                batch_cap,
                ..IoConfig::paper()
            },
            nodes: 1,
            workers_per_node: 1,
            ports: 2,
            ..RouterConfig::paper_gpu()
        }
    }

    /// Workers in the whole system.
    pub fn total_workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// Ports per node.
    pub fn ports_per_node(&self) -> u16 {
        self.ports / self.nodes as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_class_selects_the_expected_fraction() {
        let c = PriorityClass::one_in(16);
        let hits = (0u32..4096).filter(|&h| c.matches(h)).count();
        assert_eq!(hits, 256);
        assert!(c.matches(0));
        assert!(!c.matches(1));
    }

    #[test]
    fn latency_defaults_are_off() {
        let l = LatencyConfig::default();
        assert!(!l.adaptive_batch);
        assert!(l.priority.is_none());
        let a = LatencyConfig::adaptive().with_priority(8);
        assert!(a.adaptive_batch);
        assert_eq!(a.priority.unwrap().mask, 7);
    }

    #[test]
    fn presets_match_paper() {
        let gpu = RouterConfig::paper_gpu();
        assert_eq!(gpu.total_workers(), 6);
        assert_eq!(gpu.ports_per_node(), 4);
        let cpu = RouterConfig::paper_cpu();
        assert_eq!(cpu.total_workers(), 8);
        let f5 = RouterConfig::fig5(64);
        assert_eq!(f5.total_workers(), 1);
        assert_eq!(f5.ports, 2);
    }
}
