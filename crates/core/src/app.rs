//! The application interface: the three callbacks of §5.1 (pre-shader,
//! shader, post-shader) plus a CPU-only path for the baseline mode.

use ps_gpu::{GpuEngine, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_sim::time::Time;

/// Outcome of pre-shading a chunk.
#[derive(Debug, Default, Clone, Copy)]
pub struct PreShadeResult {
    /// CPU cycles the worker spent (parsing, classification, header
    /// rewrites, building the GPU input arrays).
    pub cycles: u64,
    /// Packets dropped (malformed, TTL expired, bad checksum).
    pub dropped: u64,
    /// Packets diverted to the host stack (destined to local, IP
    /// options, non-IP).
    pub slow_path: u64,
}

/// Where an application's output traffic goes, relative to the NUMA
/// node a packet arrived on — the property that decides how the
/// sharded runtime may parallelize a run (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAffinity {
    /// Every packet leaves through a port on its RX node: NUMA
    /// domains never interact, so shards run barrier-free.
    NodeLocal,
    /// Packets may leave through a remote node's port: shards must
    /// exchange them at conservative-window barriers, with the QPI
    /// hop as lookahead.
    CrossNode,
}

/// A PacketShader application.
///
/// The router calls, in order: [`App::pre_shade`] on a worker; then
/// either [`App::process_cpu`] (CPU-only mode) or [`App::shade`] on
/// the master + [`App::post_shade_cycles`] back on the worker
/// (CPU+GPU mode). All packet mutation is real; the returned
/// cycle/time values drive the virtual clock.
pub trait App {
    /// Application name for reports.
    fn name(&self) -> &str;

    /// Select the GPU staging mode (`RouterConfig.staging`). Called by
    /// `Router::new` *before* any [`App::setup_gpu`] call so device
    /// buffers can be sized for the mode. Column-staged apps forward
    /// this to their `ColumnStage`; apps whose kernels consume full
    /// payloads anyway (IPsec) keep the no-op default.
    fn set_staging(&mut self, _mode: Staging) {}

    /// Upload persistent state (table images, keys) to node `node`'s
    /// GPU. Called once per device before the simulation starts.
    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine);

    /// Cumulative host-PCIe staging traffic over the whole run:
    /// `(h2d_bytes, d2h_bytes, staged_packets)` summed across this
    /// app's kernel launches, or [`None`] for apps without a column
    /// stage. Surfaced through `RouterReport` so benches can report
    /// bytes-per-packet without the trace layer.
    fn staging_totals(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// Pre-shading (worker): classify, rewrite headers, stage GPU
    /// inputs. Must retain only fast-path packets in `pkts`.
    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult;

    /// The whole application on the CPU (CPU-only mode), *after*
    /// [`App::pre_shade`] has run. Returns cycles spent. Must set
    /// `out_port` on every packet (or drop by removing it).
    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64;

    /// Shading (master): move inputs to the GPU, launch kernels, move
    /// results back, apply them to `pkts` (set `out_port`, rewrite
    /// payloads). `ready` is when the input data is available; the
    /// returned time is when the results are back in host memory.
    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time;

    /// Post-shading cycles on the worker for an `n`-packet chunk
    /// (splitting results, queueing to TX ports).
    fn post_shade_cycles(&self, n: usize) -> u64 {
        // Default: ~30 cycles per packet of result application.
        30 * n as u64
    }

    /// A GPU fault aborted node `node`'s in-flight batch (ps-fault's
    /// `GpuAbort`, modeling a device context reset). The batch itself
    /// re-runs on the CPU fallback path, but any *device-synchronized
    /// per-node state* — a stateful NF's flow table — is gone. Apps
    /// that keep such state flush it here so post-fault behavior
    /// reflects real recovery (flows re-establish); stateless apps
    /// keep the no-op default.
    fn on_gpu_fault(&mut self, _node: usize) {}

    /// A fresh, equivalent copy of this (pre-run) app for one shard of
    /// a parallel run, plus its traffic affinity. Return [`None`]
    /// (the default) to opt out of sharded execution entirely —
    /// correct for apps with global mutable state whose evolution
    /// depends on seeing *all* traffic.
    fn shard_replica(&self) -> Option<(Self, ShardAffinity)>
    where
        Self: Sized,
    {
        None
    }
}
