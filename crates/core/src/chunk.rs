//! Chunks: the batch unit of the framework (§5.3).

use ps_io::Packet;
use ps_sim::time::Time;

/// A chunk of packets fetched in one batched RX call. "The chunk size
/// is not fixed but only capped; we do not intentionally wait for the
/// fixed number of packets" — chunks adapt to load, trading
/// parallelism against latency.
#[derive(Debug)]
pub struct Chunk {
    /// The packets, in RX (FIFO) order.
    pub packets: Vec<Packet>,
    /// Worker that fetched the chunk.
    pub worker: usize,
    /// When the RX fetch finished (for queueing-delay accounting).
    pub fetched_at: Time,
}

impl Chunk {
    /// A chunk fetched by `worker`.
    pub fn new(worker: usize, packets: Vec<Packet>, fetched_at: Time) -> Chunk {
        Chunk {
            packets,
            worker,
            fetched_at,
        }
    }

    /// Packets in the chunk.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when empty (possible after pre-shading drops everything).
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total frame bytes.
    pub fn bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_nic::port::PortId;

    #[test]
    fn accessors() {
        let pkts = vec![
            Packet::new(0, vec![0; 64], PortId(0), 0),
            Packet::new(1, vec![0; 128], PortId(1), 0),
        ];
        let c = Chunk::new(2, pkts, 500);
        assert_eq!(c.len(), 2);
        assert_eq!(c.bytes(), 192);
        assert_eq!(c.worker, 2);
        assert!(!c.is_empty());
    }
}
