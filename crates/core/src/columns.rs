//! Columnar (struct-of-arrays) GPU staging.
//!
//! Every offloaded kernel reads a small fixed-width field per packet
//! — the IPv4 kernel a 4-byte destination address, the flow kernels a
//! canonical 5-tuple — so the staging layer ships *columns*, not
//! frames. A [`ColumnSet`] declares, per kernel, the input column it
//! reads and the output column it writes back; a [`ColumnStage`] owns
//! the host-side gather/scatter buffers and performs the
//! mode-dependent transfer:
//!
//! * [`Staging::Soa`] (default): the gathered column is one packed
//!   `copy_h2d` of `n × width` bytes — byte- and address-identical to
//!   what the apps always did, now factored into one place;
//! * [`Staging::Frames`] (ablation baseline): each packet occupies a
//!   [`FRAME_SLOT`]-byte device cell and PCIe/IOH are charged the
//!   *full frame bytes*, with the kernel reading its field at the
//!   frame offset — the naive whole-frame staging the paper's §4.3.1
//!   optimization removes;
//! * [`Staging::DirectDma`] (ablation): the column lands in device
//!   memory with NIC RX DMA itself (NaNet/GPUDirect-style peer
//!   transfer), so upload costs nothing beyond the RX traversal the
//!   NIC already paid; only results cross back.
//!
//! In every mode the *functional* bytes reaching the kernel are
//! identical, so results never depend on the staging mode — only
//! modeled time and PCIe byte counts do. Table images (FIB, wildcard
//! lists) are persistent state, not per-batch staging, and keep using
//! plain `copy_h2d` in all modes; IPsec's kernels genuinely consume
//! full payloads and stay outside the column layer.

use ps_gpu::{DeviceBuffer, GpuEngine, Slots, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_sim::time::Time;

/// One named fixed-width per-packet field.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSpec {
    /// Field name (documentation + trace labels).
    pub name: &'static str,
    /// Bytes per packet.
    pub width: usize,
}

/// The column layout of one kernel: what it reads, what it writes
/// back, and where the input lives inside a raw frame (for the
/// frame-staging ablation).
#[derive(Debug, Clone, Copy)]
pub struct ColumnSet {
    /// Kernel name (matches `Kernel::name`).
    pub kernel: &'static str,
    /// The per-packet input column the kernel reads.
    pub input: ColumnSpec,
    /// The per-packet result column the kernel writes.
    pub output: ColumnSpec,
    /// Byte offset of the input field within a staged frame slot in
    /// [`Staging::Frames`] mode. For synthesized columns (canonical
    /// tuples) this is the offset of the bytes they derive from.
    pub frame_offset: usize,
    /// Cumulative-counter names for the trace layer (`pcie_h2d.*`,
    /// `pcie_d2h.*`, `pcie_pkts.*` — picked up by `trace_summary`'s
    /// PCIe staging table).
    pub h2d_ctr: &'static str,
    /// Device→host bytes counter name.
    pub d2h_ctr: &'static str,
    /// Staged-packets counter name.
    pub pkts_ctr: &'static str,
}

/// Device bytes reserved per packet in frame-staging mode: one
/// huge-packet-buffer cell, as the seed's I/O engine uses host-side.
pub const FRAME_SLOT: usize = 2048;

/// Frame slots in the frame-mode input buffer (16 MB per node at
/// [`FRAME_SLOT`] bytes). The paper-config master gathers at most
/// `max_gather_chunks × batch_cap` ≈ 1.5 K packets per shading step,
/// well under this; [`ColumnStage::upload`] asserts the bound.
pub const FRAME_SLOTS: usize = 8192;

/// IPv4 forwarding: the kernel reads the 4-byte destination address
/// (frame offset 30 = Ethernet 14 + IP dst 16) and writes a 2-byte
/// next-hop column.
pub const IPV4_COLUMNS: ColumnSet = ColumnSet {
    kernel: "ipv4-dir24",
    input: ColumnSpec {
        name: "dst_ipv4",
        width: 4,
    },
    output: ColumnSpec {
        name: "next_hop",
        width: 2,
    },
    frame_offset: 30,
    h2d_ctr: "pcie_h2d.ipv4-dir24",
    d2h_ctr: "pcie_d2h.ipv4-dir24",
    pkts_ctr: "pcie_pkts.ipv4-dir24",
};

/// IPv6 forwarding: 16-byte destination address (frame offset 38 =
/// Ethernet 14 + IPv6 dst 24), 2-byte next-hop column back.
pub const IPV6_COLUMNS: ColumnSet = ColumnSet {
    kernel: "ipv6-waldvogel",
    input: ColumnSpec {
        name: "dst_ipv6",
        width: 16,
    },
    output: ColumnSpec {
        name: "next_hop",
        width: 2,
    },
    frame_offset: 38,
    h2d_ctr: "pcie_h2d.ipv6-waldvogel",
    d2h_ctr: "pcie_d2h.ipv6-waldvogel",
    pkts_ctr: "pcie_pkts.ipv6-waldvogel",
};

/// OpenFlow: the 32-byte padded canonical flow key (synthesized from
/// the headers starting at the IP header, frame offset 14), 8-byte
/// `(hash, action, scanned)` result column back.
pub const OPENFLOW_COLUMNS: ColumnSet = ColumnSet {
    kernel: "openflow-hash+wildcard",
    input: ColumnSpec {
        name: "flow_key",
        width: 32,
    },
    output: ColumnSpec {
        name: "match",
        width: 8,
    },
    frame_offset: 14,
    h2d_ctr: "pcie_h2d.openflow-hash+wildcard",
    d2h_ctr: "pcie_d2h.openflow-hash+wildcard",
    pkts_ctr: "pcie_pkts.openflow-hash+wildcard",
};

/// Stateful NFs (NAT, load balancer): 16-byte padded canonical
/// 5-tuple (derived from the addresses at frame offset 26 = Ethernet
/// 14 + IP src 12), 8-byte flow-hash column back.
pub const FLOW_COLUMNS: ColumnSet = ColumnSet {
    kernel: "flow-hash",
    input: ColumnSpec {
        name: "flow_tuple",
        width: 16,
    },
    output: ColumnSpec {
        name: "flow_hash",
        width: 8,
    },
    frame_offset: 26,
    h2d_ctr: "pcie_h2d.flow-hash",
    d2h_ctr: "pcie_d2h.flow-hash",
    pkts_ctr: "pcie_pkts.flow-hash",
};

/// The host side of one kernel's column staging: gather buffer,
/// result buffer, mode-dependent transfer logic and cumulative PCIe
/// byte accounting.
#[derive(Debug)]
pub struct ColumnStage {
    set: ColumnSet,
    mode: Staging,
    staged: Vec<u8>,
    out: Vec<u8>,
    h2d_bytes: u64,
    d2h_bytes: u64,
    pkts: u64,
}

impl ColumnStage {
    /// A stage for `set`, in the default SoA mode.
    pub fn new(set: ColumnSet) -> ColumnStage {
        ColumnStage {
            set,
            mode: Staging::Soa,
            staged: Vec::new(),
            out: Vec::new(),
            h2d_bytes: 0,
            d2h_bytes: 0,
            pkts: 0,
        }
    }

    /// Switch staging mode. Must happen before device buffers are
    /// allocated (`Router::new` calls `App::set_staging` before
    /// `App::setup_gpu`).
    pub fn set_mode(&mut self, mode: Staging) {
        self.mode = mode;
    }

    /// The active staging mode.
    pub fn mode(&self) -> Staging {
        self.mode
    }

    /// The column layout this stage serves.
    pub fn set(&self) -> &ColumnSet {
        &self.set
    }

    /// Where the kernel finds thread `tid`'s input record under the
    /// active mode.
    pub fn slots(&self) -> Slots {
        match self.mode {
            Staging::Frames => Slots::frames(FRAME_SLOT as u32, self.set.frame_offset as u32),
            Staging::Soa | Staging::DirectDma => Slots::packed(self.set.input.width as u32),
        }
    }

    /// Allocate the device input buffer for up to `max_pkts` packets
    /// under the active mode. In SoA/direct mode this is exactly the
    /// packed column (`max_pkts × width` — the seed's allocation, so
    /// device addresses stay identical); frame mode reserves
    /// [`FRAME_SLOTS`] frame cells.
    pub fn alloc_input(&self, eng: &mut GpuEngine, max_pkts: usize) -> DeviceBuffer {
        match self.mode {
            Staging::Frames => eng.dev.mem.alloc(FRAME_SLOTS * FRAME_SLOT),
            Staging::Soa | Staging::DirectDma => eng.dev.mem.alloc(max_pkts * self.set.input.width),
        }
    }

    /// Allocate the device output buffer for up to `max_pkts` packets
    /// (always packed: results are compact in every mode).
    pub fn alloc_output(&self, eng: &mut GpuEngine, max_pkts: usize) -> DeviceBuffer {
        eng.dev.mem.alloc(max_pkts * self.set.output.width)
    }

    /// Start a gather: clears and returns the host staging buffer for
    /// the app to fill with `n × width` column bytes.
    pub fn begin(&mut self) -> &mut Vec<u8> {
        self.staged.clear();
        &mut self.staged
    }

    /// Move the gathered column of `pkts` to `buf` under the active
    /// mode; `ready` is when the gather finished on the host. Returns
    /// when the kernel may start reading.
    pub fn upload(
        &mut self,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        buf: &DeviceBuffer,
        pkts: &[Packet],
    ) -> Time {
        let w = self.set.input.width;
        let n = pkts.len();
        debug_assert_eq!(self.staged.len(), n * w, "gather filled the column");
        match self.mode {
            Staging::Soa => {
                self.h2d_bytes += self.staged.len() as u64;
                eng.copy_h2d(ready, ioh, buf, 0, &self.staged)
            }
            Staging::Frames => {
                assert!(n <= FRAME_SLOTS, "frame staging overflow: {n} packets");
                for (i, col) in self.staged.chunks_exact(w).enumerate() {
                    eng.deposit(buf, i * FRAME_SLOT + self.set.frame_offset, col);
                }
                let frame_bytes: u64 = pkts.iter().map(|p| p.data.len() as u64).sum();
                self.h2d_bytes += frame_bytes;
                eng.charge_h2d(ready, ioh, frame_bytes)
            }
            Staging::DirectDma => {
                // The column arrived with RX DMA; one IOH traversal
                // was already paid by the NIC model. Only the ledger
                // moves.
                eng.deposit(buf, 0, &self.staged);
                ioh.note_direct(self.staged.len() as u64);
                ready
            }
        }
    }

    /// Copy the kernel's `n`-packet result column back to the host
    /// (`submit` = CPU queueing time, `ready` = kernel completion),
    /// emit the cumulative PCIe counters for this launch, and return
    /// `(completion, results)`.
    pub fn download(
        &mut self,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        submit: Time,
        ready: Time,
        buf: &DeviceBuffer,
        n: usize,
    ) -> (Time, &[u8]) {
        self.out.resize(n * self.set.output.width, 0);
        let done = eng.copy_d2h(submit, ready, ioh, buf, 0, &mut self.out);
        self.d2h_bytes += self.out.len() as u64;
        self.pkts += n as u64;
        let lane = eng.trace_lane;
        ps_trace::counter(
            ps_trace::Category::Gpu,
            self.set.h2d_ctr,
            lane,
            done,
            self.h2d_bytes,
        );
        ps_trace::counter(
            ps_trace::Category::Gpu,
            self.set.d2h_ctr,
            lane,
            done,
            self.d2h_bytes,
        );
        ps_trace::counter(
            ps_trace::Category::Gpu,
            self.set.pkts_ctr,
            lane,
            done,
            self.pkts,
        );
        (done, &self.out)
    }

    /// Take ownership of the result buffer — for apps whose result
    /// application needs `&mut self` wholesale (stateful table ops)
    /// and so cannot hold the borrow [`ColumnStage::download`]
    /// returns. Pair with [`ColumnStage::give_out`] so the buffer
    /// keeps being reused.
    pub fn take_out(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Return the buffer taken by [`ColumnStage::take_out`].
    pub fn give_out(&mut self, out: Vec<u8>) {
        self.out = out;
    }

    /// Cumulative `(h2d_bytes, d2h_bytes, staged_packets)` for
    /// `App::staging_totals`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.h2d_bytes, self.d2h_bytes, self.pkts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_gpu::GpuDevice;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};

    fn rig() -> (GpuEngine, Ioh) {
        let dev = GpuDevice::gtx480_with_mem(64 << 20);
        (
            GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16())),
            Ioh::new(IohSpec::intel_5520_dual()),
        )
    }

    fn pkts(n: usize, len: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i as u64, vec![i as u8; len], ps_nic::port::PortId(0), 0))
            .collect()
    }

    #[test]
    fn soa_upload_matches_plain_copy_cost() {
        // SoA through the stage must cost exactly what the seed's
        // direct copy_h2d of the same bytes cost.
        let (mut e1, mut i1) = rig();
        let (mut e2, mut i2) = rig();
        let p = pkts(64, 60);
        let mut stage = ColumnStage::new(IPV4_COLUMNS);
        let buf1 = stage.alloc_input(&mut e1, 64);
        let col: Vec<u8> = (0..64u32).flat_map(|i| i.to_le_bytes()).collect();
        stage.begin().extend_from_slice(&col);
        let t_stage = stage.upload(&mut e1, &mut i1, 1000, &buf1, &p);
        let buf2 = e2.dev.mem.alloc(64 * 4);
        let t_plain = e2.copy_h2d(1000, &mut i2, &buf2, 0, &col);
        assert_eq!(t_stage, t_plain);
        assert_eq!(i1.h2d_bytes(), i2.h2d_bytes());
    }

    #[test]
    fn frames_charges_frame_bytes_and_deposits_at_offsets() {
        let (mut e, mut ioh) = rig();
        let p = pkts(3, 60);
        let mut stage = ColumnStage::new(IPV4_COLUMNS);
        stage.set_mode(Staging::Frames);
        let buf = stage.alloc_input(&mut e, 3);
        stage.begin().extend_from_slice(&[1u8; 12]);
        stage.upload(&mut e, &mut ioh, 0, &buf, &p);
        assert_eq!(ioh.h2d_bytes(), 180, "charged sum of frame lengths");
        let mut cell = [0u8; 4];
        e.dev
            .mem
            .read(&buf, 2 * FRAME_SLOT + IPV4_COLUMNS.frame_offset, &mut cell);
        assert_eq!(cell, [1u8; 4], "field landed inside its frame slot");
        assert_eq!(stage.totals().0, 180);
    }

    #[test]
    fn direct_dma_moves_no_host_pcie_bytes() {
        let (mut e, mut ioh) = rig();
        let p = pkts(16, 60);
        let mut stage = ColumnStage::new(FLOW_COLUMNS);
        stage.set_mode(Staging::DirectDma);
        let buf = stage.alloc_input(&mut e, 16);
        stage.begin().extend_from_slice(&[7u8; 256]);
        let done = stage.upload(&mut e, &mut ioh, 5000, &buf, &p);
        assert_eq!(done, 5000, "upload is free: bytes rode RX DMA");
        assert_eq!(ioh.h2d_bytes(), 0);
        assert_eq!(ioh.direct_bytes(), 256);
        let mut back = vec![0u8; 256];
        e.dev.mem.read(&buf, 0, &mut back);
        assert_eq!(back, vec![7u8; 256], "column still materialized");
    }

    #[test]
    fn download_is_packed_in_every_mode() {
        for mode in [Staging::Frames, Staging::Soa, Staging::DirectDma] {
            let (mut e, mut ioh) = rig();
            let mut stage = ColumnStage::new(IPV4_COLUMNS);
            stage.set_mode(mode);
            let out = stage.alloc_output(&mut e, 32);
            let (_, res) = stage.download(&mut e, &mut ioh, 0, 100, &out, 32);
            assert_eq!(res.len(), 64);
            assert_eq!(ioh.d2h_bytes(), 64);
        }
    }
}
