//! Minimal forwarding: RX + TX without table lookup — the workload of
//! the packet I/O engine evaluation (§4.6, Figures 5 and 6).

use ps_gpu::GpuEngine;
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_nic::port::PortId;
use ps_sim::time::Time;

use crate::app::{App, PreShadeResult, ShardAffinity};

/// Where minimal forwarding sends packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardPattern {
    /// Back out the port the packet arrived on.
    Echo,
    /// To the same-index port pair within the node (ports 0↔1, 2↔3…).
    SameNode,
    /// To the corresponding port in the *other* node — Figure 6's
    /// "node-crossing" worst case.
    NodeCrossing,
}

/// The no-op application.
pub struct MinimalApp {
    pattern: ForwardPattern,
    total_ports: u16,
}

impl MinimalApp {
    /// Minimal forwarding over `total_ports` ports.
    pub fn new(pattern: ForwardPattern, total_ports: u16) -> MinimalApp {
        assert!(total_ports.is_power_of_two() || total_ports.is_multiple_of(2));
        MinimalApp {
            pattern,
            total_ports,
        }
    }

    fn out_port(&self, in_port: PortId) -> PortId {
        match self.pattern {
            ForwardPattern::Echo => in_port,
            ForwardPattern::SameNode => PortId(in_port.0 ^ 1),
            ForwardPattern::NodeCrossing => {
                PortId((in_port.0 + self.total_ports / 2) % self.total_ports)
            }
        }
    }
}

impl App for MinimalApp {
    fn name(&self) -> &str {
        "minimal-forwarding"
    }

    fn setup_gpu(&mut self, _node: usize, _eng: &mut GpuEngine) {}

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        // No classification: the §4.6 experiment "repeatedly receives,
        // transmits, and forwards packets without IP table lookup".
        for p in pkts.iter_mut() {
            p.out_port = Some(self.out_port(p.in_port));
        }
        PreShadeResult::default()
    }

    fn process_cpu(&mut self, _pkts: &mut Vec<Packet>) -> u64 {
        0
    }

    fn shade(
        &mut self,
        _node: usize,
        _eng: &mut GpuEngine,
        _ioh: &mut Ioh,
        ready: Time,
        _pkts: &mut [Packet],
    ) -> Time {
        ready // nothing to offload
    }

    fn post_shade_cycles(&self, _n: usize) -> u64 {
        0
    }

    fn shard_replica(&self) -> Option<(Self, ShardAffinity)> {
        let affinity = match self.pattern {
            ForwardPattern::Echo | ForwardPattern::SameNode => ShardAffinity::NodeLocal,
            ForwardPattern::NodeCrossing => ShardAffinity::CrossNode,
        };
        Some((
            MinimalApp {
                pattern: self.pattern,
                total_ports: self.total_ports,
            },
            affinity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns() {
        let echo = MinimalApp::new(ForwardPattern::Echo, 8);
        assert_eq!(echo.out_port(PortId(3)), PortId(3));
        let same = MinimalApp::new(ForwardPattern::SameNode, 8);
        assert_eq!(same.out_port(PortId(2)), PortId(3));
        assert_eq!(same.out_port(PortId(3)), PortId(2));
        let cross = MinimalApp::new(ForwardPattern::NodeCrossing, 8);
        assert_eq!(cross.out_port(PortId(0)), PortId(4));
        assert_eq!(cross.out_port(PortId(5)), PortId(1));
    }

    #[test]
    fn pre_shade_sets_out_ports() {
        let mut app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let mut pkts = vec![Packet::new(0, vec![0; 64], PortId(6), 0)];
        let r = app.pre_shade(&mut pkts);
        assert_eq!(pkts[0].out_port, Some(PortId(7)));
        assert_eq!(r.dropped, 0);
        assert_eq!(r.cycles, 0);
    }
}
