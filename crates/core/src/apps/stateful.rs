//! Shared plumbing for the stateful NFs (NAT and the L4 load
//! balancer): 5-tuple extraction, incremental header rewrites, and
//! the flow-hash GPU staging layout both apps use.
//!
//! Both NFs follow the same offload split as OpenFlow (§6.2.3): the
//! GPU computes the per-packet flow hash over the staged canonical
//! tuple bytes, and the host applies the stateful table operations in
//! arrival order with the hash precomputed — so the CPU path and the
//! GPU path run the *same* table code on the *same* hash function and
//! stay functionally identical.

use ps_flow::FlowTuple;
use ps_net::ethernet::HEADER_LEN as ETH_LEN;
use ps_net::ipv4::protocol;
use ps_net::{checksum, EtherType, EthernetFrame, Ipv4Packet, TcpSegment, UdpDatagram};

/// Staged bytes per packet: 13 canonical tuple bytes + 3 pad, so the
/// device reads stay 4-aligned.
pub(crate) const KEY_STRIDE: usize = 16;

/// Byte offsets of the IPv4 fields the rewrites patch (no options on
/// the fast path, so the layout is fixed).
const IP_CKSUM: usize = ETH_LEN + 10;
const IP_SRC: usize = ETH_LEN + 12;
const IP_DST: usize = ETH_LEN + 16;

/// A parsed fast-path flow: the cuckoo key plus what the rewrite and
/// the connection tracker need.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParsedFlow {
    /// The 5-tuple `(src, dst, sport, dport, proto)`.
    pub tuple: FlowTuple,
    /// Byte offset of the L4 header within the frame.
    pub l4: usize,
    /// Raw TCP flag byte (`0` for UDP).
    pub tcp_flags: u8,
}

/// Extract the 5-tuple of an IPv4 UDP/TCP frame. Anything else —
/// IPv6, other protocols, truncated L4 headers — returns [`None`]:
/// the stateful NFs divert those to the slow path.
pub(crate) fn parse_flow(data: &[u8]) -> Option<ParsedFlow> {
    let eth = EthernetFrame::new_checked(data).ok()?;
    if eth.ethertype() != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Packet::new_checked(eth.payload()).ok()?;
    if ip.has_options() {
        return None;
    }
    let proto = ip.protocol();
    let (sport, dport, tcp_flags) = match proto {
        protocol::UDP => {
            let u = UdpDatagram::new_checked(ip.payload()).ok()?;
            (u.src_port(), u.dst_port(), 0)
        }
        protocol::TCP => {
            let t = TcpSegment::new_checked(ip.payload()).ok()?;
            (t.src_port(), t.dst_port(), t.flags().0)
        }
        _ => return None,
    };
    Some(ParsedFlow {
        tuple: (
            u32::from(ip.src()),
            u32::from(ip.dst()),
            sport,
            dport,
            proto,
        ),
        l4: ETH_LEN + ps_net::ipv4::HEADER_LEN,
        tcp_flags,
    })
}

fn read16(data: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([data[off], data[off + 1]])
}

fn write16(data: &mut [u8], off: usize, v: u16) {
    data[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Fold a 32-bit address change into a 16-bit checksum (two RFC 1624
/// halfword updates).
fn update_addr(ck: u16, old: u32, new: u32) -> u16 {
    let ck = checksum::update16(ck, (old >> 16) as u16, (new >> 16) as u16);
    checksum::update16(ck, old as u16, new as u16)
}

/// Offset of the L4 checksum field, if the frame carries one that
/// must track the pseudo-header (a UDP checksum of 0 means "none").
fn l4_cksum_off(data: &[u8], l4: usize, proto: u8) -> Option<usize> {
    match proto {
        protocol::TCP => Some(l4 + 16),
        protocol::UDP if read16(data, l4 + 6) != 0 => Some(l4 + 6),
        _ => None,
    }
}

/// Rewrite one address + port pair (source for SNAT, destination for
/// the load balancer's DNAT), updating the IP header checksum and the
/// L4 checksum incrementally — never a full re-sum.
fn rewrite(
    data: &mut [u8],
    l4: usize,
    proto: u8,
    addr_off: usize,
    port_off: usize,
    ip: u32,
    port: u16,
) {
    let old_ip = u32::from_be_bytes(data[addr_off..addr_off + 4].try_into().expect("fixed"));
    let old_port = read16(data, port_off);
    data[addr_off..addr_off + 4].copy_from_slice(&ip.to_be_bytes());
    write16(data, port_off, port);
    let ipck = update_addr(read16(data, IP_CKSUM), old_ip, ip);
    write16(data, IP_CKSUM, ipck);
    if let Some(off) = l4_cksum_off(data, l4, proto) {
        // The addresses feed the pseudo-header sum; the port is a
        // covered payload halfword.
        let ck = update_addr(read16(data, off), old_ip, ip);
        let mut ck = checksum::update16(ck, old_port, port);
        if proto == protocol::UDP && ck == 0 {
            ck = 0xFFFF; // RFC 768: computed 0 transmits as 0xFFFF
        }
        write16(data, off, ck);
    }
}

/// SNAT: rewrite the source address and port.
pub(crate) fn rewrite_src(data: &mut [u8], pf: &ParsedFlow, ip: u32, port: u16) {
    rewrite(data, pf.l4, pf.tuple.4, IP_SRC, pf.l4, ip, port);
}

/// DNAT: rewrite the destination address and port.
pub(crate) fn rewrite_dst(data: &mut [u8], pf: &ParsedFlow, ip: u32, port: u16) {
    rewrite(data, pf.l4, pf.tuple.4, IP_DST, pf.l4 + 2, ip, port);
}

/// Stage the canonical key bytes of every parsed packet at
/// [`KEY_STRIDE`] spacing (malformed frames stage a zero key; the
/// caller discards their result).
pub(crate) fn stage_keys(malformed: &mut u64, pkts: &[ps_io::Packet], staged: &mut Vec<u8>) {
    staged.clear();
    staged.resize(pkts.len() * KEY_STRIDE, 0);
    for (i, p) in pkts.iter().enumerate() {
        if let Some(pf) = super::revalidate(malformed, parse_flow(&p.data)) {
            staged[i * KEY_STRIDE..i * KEY_STRIDE + 13]
                .copy_from_slice(&ps_flow::tuple_bytes(&pf.tuple));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_net::ethernet::MacAddr;
    use ps_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(192, 168, 9, 9),
            4000,
            53,
            96,
        )
    }

    #[test]
    fn parses_the_5_tuple() {
        let pf = parse_flow(&udp_frame()).expect("udp parses");
        assert_eq!(pf.tuple, (0x0A010203, 0xC0A80909, 4000, 53, protocol::UDP));
        assert_eq!(pf.tcp_flags, 0);
    }

    #[test]
    fn rejects_non_ip_and_non_l4() {
        let mut arp = udp_frame();
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        assert!(parse_flow(&arp).is_none());
        let mut icmp = udp_frame();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut icmp[ETH_LEN..]);
            ip.set_protocol(protocol::ICMP);
            ip.fill_checksum();
        }
        assert!(parse_flow(&icmp).is_none());
    }

    #[test]
    fn incremental_rewrites_keep_checksums_valid() {
        let mut f = udp_frame();
        let pf = parse_flow(&f).expect("parses");
        rewrite_src(&mut f, &pf, 0xCB007101, 61_234);
        let ip = Ipv4Packet::new_unchecked(&f[ETH_LEN..]);
        assert_eq!(u32::from(ip.src()), 0xCB007101);
        assert!(ip.verify_checksum(), "IP checksum tracks the rewrite");
        let udp = UdpDatagram::new_unchecked(&f[pf.l4..]);
        assert_eq!(udp.src_port(), 61_234);
        assert!(
            udp.verify_checksum_v4(0xCB007101u32.to_be_bytes(), ip.dst().octets()),
            "UDP checksum tracks the pseudo-header"
        );

        let mut g = udp_frame();
        let pf = parse_flow(&g).expect("parses");
        rewrite_dst(&mut g, &pf, 0x0A0A0A0A, 8080);
        let ip = Ipv4Packet::new_unchecked(&g[ETH_LEN..]);
        assert_eq!(u32::from(ip.dst()), 0x0A0A0A0A);
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_unchecked(&g[pf.l4..]);
        assert_eq!(udp.dst_port(), 8080);
        assert!(udp.verify_checksum_v4(ip.src().octets(), 0x0A0A0A0Au32.to_be_bytes()));
    }
}
