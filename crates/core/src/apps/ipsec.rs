//! The IPsec gateway (§6.2.4): ESP tunnel mode with AES-128-CTR +
//! HMAC-SHA1, block-parallel AES and packet-parallel HMAC on the GPU.

use std::net::Ipv4Addr;

use ps_crypto::esp::{encrypt_tunnel, SecurityAssociation};
use ps_gpu::{DeviceBuffer, GpuEngine};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_net::ethernet::{MacAddr, HEADER_LEN as ETH_LEN};
use ps_net::ipv4::protocol;
use ps_net::{classify, esp as espfmt, PacketBuilder, Verdict};
use ps_nic::port::PortId;
use ps_sim::time::Time;

use crate::app::{App, PreShadeResult};
use crate::kernels::{IpsecAesKernel, IpsecHmacKernel};

/// CPU cycles per ciphertext byte for table-based AES-128-CTR with
/// SSE assistance (the paper's "highly optimized AES and SHA1
/// implementations using SSE", §6.2.4).
const AES_CPB: u64 = 20;
/// CPU cycles per SHA-1 compression.
const SHA_PER_COMP: u64 = 500;
/// Fixed ESP framing cycles per packet (headers, padding, trailer).
const ESP_FIXED_CYCLES: u64 = 250;
/// Per-packet pre-shading cycles (classification + staging setup).
const PRE_SHADE_CYCLES: u64 = 80;

/// Staging capacity per launch.
pub const MAX_GATHER_PKTS: usize = 32_768;
/// Packed payload staging bytes per launch.
pub const MAX_GATHER_BYTES: usize = 24 << 20;

struct NodeGpu {
    payload: DeviceBuffer,
    params: DeviceBuffer,
    block_info: DeviceBuffer,
}

/// Per-launch gather/scatter staging, reused across launches so the
/// steady state allocates nothing: `clear()` keeps capacity, and the
/// buffers grow only until the largest batch has been seen.
#[derive(Default)]
struct Staging {
    packed: Vec<u8>,
    params: Vec<u8>,
    block_info: Vec<u8>,
    slots: Vec<(usize, usize, usize)>,
    out: Vec<u8>,
}

/// The IPsec tunnel gateway.
pub struct IpsecApp {
    sa: SecurityAssociation,
    aes_key: [u8; 16],
    nonce: u32,
    hmac_key: Vec<u8>,
    tunnel_src: Ipv4Addr,
    tunnel_dst: Ipv4Addr,
    gpu: Vec<Option<NodeGpu>>,
    stage: Staging,
    /// Packets encrypted (for reports).
    pub encrypted: u64,
    /// Frames too damaged to encapsulate (fault injection can damage
    /// a frame after classification); each is a counted drop, never a
    /// panic.
    pub malformed: u64,
}

impl IpsecApp {
    /// A gateway with static keys (§6: "cipher keys are static").
    pub fn new(aes_key: [u8; 16], nonce: u32, hmac_key: &[u8]) -> IpsecApp {
        IpsecApp {
            sa: SecurityAssociation::new(0x1001, &aes_key, nonce, hmac_key),
            aes_key,
            nonce,
            hmac_key: hmac_key.to_vec(),
            tunnel_src: Ipv4Addr::new(192, 0, 2, 1),
            tunnel_dst: Ipv4Addr::new(198, 51, 100, 1),
            gpu: Vec::new(),
            stage: Staging::default(),
            encrypted: 0,
            malformed: 0,
        }
    }

    /// A decrypting SA for verification (tests, examples).
    pub fn peer_sa(&self) -> SecurityAssociation {
        SecurityAssociation::new(0x1001, &self.aes_key, self.nonce, &self.hmac_key)
    }

    fn out_port(in_port: PortId) -> PortId {
        PortId(in_port.0 ^ 1)
    }

    fn outer_frame(&self, esp_payload: &[u8]) -> Vec<u8> {
        PacketBuilder::raw_v4(
            MacAddr::local(0xE0),
            MacAddr::local(0xE1),
            self.tunnel_src,
            self.tunnel_dst,
            protocol::ESP,
            esp_payload,
        )
    }

    fn cpu_crypto_cycles(inner_len: usize) -> u64 {
        let ct = espfmt::ciphertext_len(inner_len);
        let auth = espfmt::HEADER_LEN + espfmt::IV_LEN + ct;
        AES_CPB * ct as u64
            + SHA_PER_COMP * ps_crypto::sha1::hmac_compressions(auth) as u64
            + ESP_FIXED_CYCLES
    }
}

/// The revalidation parse (see [`super::revalidate`]): the inner
/// packet to tunnel is everything after the Ethernet header. Both
/// crypto paths re-slice it from the raw frame.
fn inner_frame(data: &[u8]) -> Option<&[u8]> {
    data.get(ETH_LEN..)
}

impl App for IpsecApp {
    fn name(&self) -> &str {
        "ipsec"
    }

    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine) {
        if self.gpu.len() <= node {
            self.gpu.resize_with(node + 1, || None);
        }
        let payload = eng.dev.mem.alloc(MAX_GATHER_BYTES);
        let params = eng.dev.mem.alloc(MAX_GATHER_PKTS * 16);
        let block_info = eng.dev.mem.alloc(MAX_GATHER_BYTES / 16 * 4);
        self.gpu[node] = Some(NodeGpu {
            payload,
            params,
            block_info,
        });
    }

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        let mut r = PreShadeResult::default();
        pkts.retain(|p| match classify(&p.data, &[]) {
            Verdict::FastPath => true,
            Verdict::SlowPath(_) => {
                r.slow_path += 1;
                false
            }
            Verdict::Drop(_) => {
                r.dropped += 1;
                false
            }
        });
        // Staging copies the inner packet into the plaintext region:
        // ~1 cycle per 16 B plus fixed work.
        let bytes: u64 = pkts.iter().map(|p| p.len() as u64).sum();
        r.cycles =
            PRE_SHADE_CYCLES * (pkts.len() as u64 + r.dropped + r.slow_path) + bytes.div_ceil(16);
        r
    }

    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64 {
        let mut cycles = 0;
        for p in pkts.iter_mut() {
            let Some(inner) = super::revalidate(&mut self.malformed, inner_frame(&p.data)) else {
                // No ESP sequence number is consumed, so the GPU path
                // (which skips staging for the same frame) stays
                // bit-identical.
                p.out_port = None;
                continue;
            };
            cycles += Self::cpu_crypto_cycles(inner.len());
            let esp = encrypt_tunnel(&mut self.sa, inner);
            p.data = self.outer_frame(&esp);
            p.out_port = Some(Self::out_port(p.in_port));
            self.encrypted += 1;
        }
        cycles
    }

    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time {
        let n = pkts.len().min(MAX_GATHER_PKTS);
        let g = self.gpu[node].as_ref().expect("setup_gpu ran");
        let (payload_buf, params_buf, info_buf) = (g.payload, g.params, g.block_info);

        // Build the packed plaintext regions + per-packet params +
        // per-block map. Framing (padding, trailer, SPI/seq) happens
        // here on the CPU; the GPU does the crypto. The staging
        // buffers are struct fields reused across launches.
        let mut st = std::mem::take(&mut self.stage);
        st.packed.clear();
        st.block_info.clear();
        st.slots.clear();
        st.params.clear();
        st.params.resize(n * 16, 0);
        // Valid-packet cursor: a malformed frame takes a sentinel
        // slot, consumes no ESP sequence number (bit-parity with the
        // CPU path, which also skips it) and stages nothing.
        let mut vi = 0usize;
        for p in pkts[..n].iter() {
            let Some(inner) = super::revalidate(&mut self.malformed, inner_frame(&p.data)) else {
                st.slots.push((usize::MAX, 0, 0));
                continue;
            };
            let seq = self.sa.seq;
            self.sa.seq = self.sa.seq.wrapping_add(1);
            let iv = SecurityAssociation::iv_for_seq(seq);
            let ct_len = espfmt::ciphertext_len(inner.len());
            let total = espfmt::total_len(inner.len());
            let base = st.packed.len();
            debug_assert_eq!(base % 16, 0);
            st.packed.resize(base + total, 0);
            {
                let region = &mut st.packed[base..base + total];
                region[0..4].copy_from_slice(&self.sa.spi.to_be_bytes());
                region[4..8].copy_from_slice(&seq.to_be_bytes());
                region[8..16].copy_from_slice(&iv);
                let ct = &mut region[16..16 + ct_len];
                ct[..inner.len()].copy_from_slice(inner);
                let pad_len = ct_len - inner.len() - espfmt::TRAILER_MIN;
                for (j, b) in ct[inner.len()..inner.len() + pad_len]
                    .iter_mut()
                    .enumerate()
                {
                    *b = (j + 1) as u8;
                }
                ct[ct_len - 2] = pad_len as u8;
                ct[ct_len - 1] = 4; // next header: IPv4-in-ESP
            }
            // Pad the region to 16 B so the next base stays aligned.
            let padded = st.packed.len().div_ceil(16) * 16;
            st.packed.resize(padded, 0);

            st.params[vi * 16..vi * 16 + 4].copy_from_slice(&(base as u32).to_le_bytes());
            st.params[vi * 16 + 4..vi * 16 + 8].copy_from_slice(&(ct_len as u32).to_le_bytes());
            st.params[vi * 16 + 8..vi * 16 + 16].copy_from_slice(&iv);
            for blk in 0..(ct_len / 16) as u32 {
                st.block_info
                    .extend_from_slice(&((vi as u32) << 8 | blk).to_le_bytes());
            }
            st.slots.push((base, ct_len, total));
            vi += 1;
        }
        assert!(
            st.packed.len() <= MAX_GATHER_BYTES,
            "gather exceeds staging"
        );
        let n_blocks = (st.block_info.len() / 4) as u32;

        // Copy-in: payload, params, block map (pipelined copies).
        let c1 = eng.copy_h2d(ready, ioh, &payload_buf, 0, &st.packed);
        let c2 = eng.copy_h2d(ready, ioh, &params_buf, 0, &st.params);
        let c3 = eng.copy_h2d(ready, ioh, &info_buf, 0, &st.block_info);
        let inputs_ready = c1.max(c2).max(c3);

        // Encrypt-then-MAC: the engine serializes the two kernels.
        // Both borrow the SA's cached contexts — the key schedule and
        // HMAC pads were expanded once at SA creation, not per launch.
        let aes = IpsecAesKernel {
            aes: self.sa.cipher(),
            nonce: self.nonce,
            payload: payload_buf,
            block_info: info_buf,
            params: params_buf,
            n_blocks,
        };
        let (aes_done, _) = eng.launch(inputs_ready, &aes, n_blocks);
        let hmac = IpsecHmacKernel {
            hmac: self.sa.hmac(),
            payload: payload_buf,
            params: params_buf,
            n: vi as u32,
        };
        let (hmac_done, _) = eng.launch(aes_done, &hmac, vi as u32);

        // Copy-out the whole packed buffer.
        st.out.clear();
        st.out.resize(st.packed.len(), 0);
        let done = eng.copy_d2h(ready, hmac_done, ioh, &payload_buf, 0, &mut st.out);

        for (i, p) in pkts[..n].iter_mut().enumerate() {
            let (base, _ct, total) = st.slots[i];
            if base == usize::MAX {
                p.out_port = None;
                continue;
            }
            let esp = &st.out[base..base + total];
            p.data = self.outer_frame(esp);
            p.out_port = Some(Self::out_port(p.in_port));
            self.encrypted += 1;
        }
        self.stage = st;
        done
    }

    fn post_shade_cycles(&self, n: usize) -> u64 {
        // Outer-frame assembly per packet.
        120 * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_crypto::esp::decrypt_tunnel;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};
    use ps_net::ethernet::EthernetFrame;
    use ps_net::ipv4::Ipv4Packet;

    fn packet(id: u64, len: usize) -> Packet {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000 + id as u16,
            2000,
            len,
        );
        Packet::new(id, f, PortId(0), 0)
    }

    fn app() -> IpsecApp {
        IpsecApp::new([0x42; 16], 0xDEAD, b"hmac-key-for-test")
    }

    #[test]
    fn cpu_path_produces_decryptable_tunnels() {
        let mut a = app();
        let original = packet(1, 100);
        let inner_before = original.data[ETH_LEN..].to_vec();
        let mut pkts = vec![original];
        a.pre_shade(&mut pkts);
        let cycles = a.process_cpu(&mut pkts);
        assert!(cycles > 1000);
        assert_eq!(pkts[0].out_port, Some(PortId(1)));

        let eth = EthernetFrame::new_checked(&pkts[0].data[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.protocol(), protocol::ESP);
        let peer = a.peer_sa();
        let inner = decrypt_tunnel(&peer, ip.payload()).expect("decrypts");
        assert_eq!(inner, inner_before);
    }

    #[test]
    fn gpu_path_matches_cpu_path_bit_for_bit() {
        let mut cpu = app();
        let mut gpu = app();
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(64 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        gpu.setup_gpu(0, &mut eng);

        let mk = || {
            (0..5u64)
                .map(|i| packet(i, 64 + (i as usize) * 37))
                .collect::<Vec<_>>()
        };
        let mut a = mk();
        let mut b = mk();
        cpu.pre_shade(&mut a);
        cpu.process_cpu(&mut a);
        gpu.pre_shade(&mut b);
        let done = gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);
        assert!(done > 0);

        // Same SA sequence numbers, same framing, same keys -> the
        // two paths must emit identical wire bytes.
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.data, y.data, "packet {}", x.id);
            assert_eq!(x.out_port, y.out_port);
        }
    }

    #[test]
    fn gpu_output_decrypts_and_round_trips() {
        let mut gpu = app();
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(64 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        gpu.setup_gpu(0, &mut eng);

        let original = packet(7, 777);
        let inner_before = original.data[ETH_LEN..].to_vec();
        let mut pkts = vec![original];
        gpu.pre_shade(&mut pkts);
        gpu.shade(0, &mut eng, &mut ioh, 0, &mut pkts);

        let eth = EthernetFrame::new_checked(&pkts[0].data[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        let peer = gpu.peer_sa();
        let inner = decrypt_tunnel(&peer, ip.payload()).expect("GPU tunnel decrypts");
        assert_eq!(inner, inner_before);
    }

    #[test]
    fn crypto_cycle_model_scales_with_size() {
        let small = IpsecApp::cpu_crypto_cycles(50);
        let large = IpsecApp::cpu_crypto_cycles(1500);
        assert!(large > 10 * small, "small={small} large={large}");
    }
}
