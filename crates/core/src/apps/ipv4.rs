//! IPv4 forwarding (§6.2.1): DIR-24-8 lookup, GPU-offloaded or on
//! the CPU.

use std::net::Ipv4Addr;

use ps_gpu::{DeviceBuffer, GpuEngine, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_lookup::dir24::{self, Dir24Table};
use ps_lookup::mem::{CountingMem, SliceMem};
use ps_lookup::route::Route4;
use ps_lookup::NO_ROUTE;
use ps_net::ethernet::HEADER_LEN as ETH_LEN;
use ps_net::ipv4::Ipv4Packet;
use ps_net::{classify, Verdict};
use ps_nic::port::PortId;
use ps_sim::time::Time;

use super::{CYCLES_PER_NS, ROUTER_LOOKUP_OVERLAP, TABLE_MISS_NS};
use crate::app::{App, PreShadeResult};
use crate::columns::{ColumnStage, IPV4_COLUMNS};
use crate::kernels::Ipv4Kernel;

/// Per-packet pre-shading cycles: parse + verdict + TTL/checksum
/// update + staging the destination address.
const PRE_SHADE_CYCLES: u64 = 55;

/// Maximum packets one gathered GPU launch can stage.
pub const MAX_GATHER: usize = 65_536;

struct NodeGpu {
    table: DeviceBuffer,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

/// The IPv4 router application.
pub struct Ipv4App {
    table: Dir24Table,
    local: Vec<Ipv4Addr>,
    gpu: Vec<Option<NodeGpu>>,
    /// Per-node flag: device table image is stale after a FIB update
    /// and must be re-uploaded before the next launch (the §7
    /// double-buffering direction: the upload rides the normal copy
    /// engine, so the data path keeps flowing).
    dirty: Vec<bool>,
    /// The destination-address column stage: gather/scatter buffers
    /// (zero-alloc in steady state), mode-dependent transfer and PCIe
    /// byte accounting.
    stage: ColumnStage,
    /// Lookups performed (for reports).
    pub lookups: u64,
    /// Frames whose bytes no longer parsed at lookup time (fault
    /// injection can damage a frame after classification); each is a
    /// counted drop, never a panic.
    pub malformed: u64,
}

impl Ipv4App {
    /// Build over a route list whose hops are output-port indices.
    pub fn new(routes: &[Route4]) -> Ipv4App {
        Ipv4App {
            table: Dir24Table::build(routes),
            local: Vec::new(),
            gpu: Vec::new(),
            dirty: Vec::new(),
            stage: ColumnStage::new(IPV4_COLUMNS),
            lookups: 0,
            malformed: 0,
        }
    }

    /// Install (or replace) one route at run time — the control-plane
    /// FIB update of §7. The CPU table updates in place; each GPU's
    /// copy is re-uploaded lazily before its next launch.
    pub fn install_route(&mut self, r: Route4) {
        self.table.insert(r);
        for d in &mut self.dirty {
            *d = true;
        }
    }

    /// Host-side lookup (shared by the CPU path and tests).
    pub fn lookup_host(&self, addr: u32) -> u16 {
        self.table.lookup_host(addr)
    }

    fn ensure_node(&mut self, node: usize) {
        if self.gpu.len() <= node {
            self.gpu.resize_with(node + 1, || None);
            self.dirty.resize(node + 1, false);
        }
    }
}

/// The revalidation parse (see [`super::revalidate`]): both lookup
/// paths re-read the destination address from the raw frame.
fn dst_addr(data: &[u8]) -> Option<u32> {
    let ip = Ipv4Packet::new_checked(data.get(ETH_LEN..)?).ok()?;
    Some(u32::from(ip.dst()))
}

impl App for Ipv4App {
    fn name(&self) -> &str {
        "ipv4"
    }

    fn set_staging(&mut self, mode: Staging) {
        self.stage.set_mode(mode);
    }

    fn staging_totals(&self) -> Option<(u64, u64, u64)> {
        Some(self.stage.totals())
    }

    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine) {
        self.ensure_node(node);
        let table = eng.dev.mem.alloc(self.table.image().len());
        eng.dev.mem.write(&table, 0, self.table.image());
        let input = self.stage.alloc_input(eng, MAX_GATHER);
        let output = self.stage.alloc_output(eng, MAX_GATHER);
        self.gpu[node] = Some(NodeGpu {
            table,
            input,
            output,
        });
    }

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        let mut r = PreShadeResult::default();
        pkts.retain_mut(|p| match classify(&p.data, &self.local) {
            Verdict::FastPath => {
                let mut ip = Ipv4Packet::new_unchecked(&mut p.data[ETH_LEN..]);
                ip.decrement_ttl();
                true
            }
            Verdict::SlowPath(_) => {
                r.slow_path += 1;
                false
            }
            Verdict::Drop(_) => {
                r.dropped += 1;
                false
            }
        });
        r.cycles = PRE_SHADE_CYCLES * (pkts.len() as u64 + r.dropped + r.slow_path);
        r
    }

    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64 {
        let mut accesses = 0u64;
        for p in pkts.iter_mut() {
            let Some(dst) = super::revalidate(&mut self.malformed, dst_addr(&p.data)) else {
                p.out_port = None;
                continue;
            };
            let mut mem = CountingMem::new(SliceMem::new(self.table.image()));
            let hop = dir24::lookup(&self.table.layout(), &mut mem, dst);
            accesses += mem.accesses;
            self.lookups += 1;
            p.out_port = (hop != NO_ROUTE).then_some(PortId(hop));
        }
        pkts.retain(|p| p.out_port.is_some());
        // Each access is a dependent table miss; modest batch-loop
        // overlap (see EXPERIMENTS.md calibration notes).
        let miss_ns = accesses as f64 * TABLE_MISS_NS as f64 / ROUTER_LOOKUP_OVERLAP;
        (miss_ns * CYCLES_PER_NS) as u64 + 30 * pkts.len() as u64
    }

    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time {
        let n = pkts.len().min(MAX_GATHER);
        let g = self.gpu[node].as_ref().expect("setup_gpu ran");
        let (table, input, output) = (g.table, g.input, g.output);
        // A pending FIB update re-uploads the table image first; the
        // copy is charged like any other transfer (§7: "incremental
        // update or double buffering").
        let mut ready = ready;
        if self.dirty.get(node).copied().unwrap_or(false) {
            ready = eng.copy_h2d(ready, ioh, &table, 0, self.table.image());
            self.dirty[node] = false;
        }
        // Gather the destination-address column (pre-shading built
        // this array; the stage models its host->device transfer
        // under the active staging mode). Buffers are reused across
        // launches.
        let staged = self.stage.begin();
        // Indices whose frames failed to re-parse (a sentinel address
        // is staged so the batch layout stays fixed). Empty — and
        // allocation-free — for healthy traffic.
        let mut bad: Vec<usize> = Vec::new();
        for (i, p) in pkts[..n].iter().enumerate() {
            match super::revalidate(&mut self.malformed, dst_addr(&p.data)) {
                Some(dst) => staged.extend_from_slice(&dst.to_le_bytes()),
                None => {
                    bad.push(i);
                    staged.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        let h2d = self.stage.upload(eng, ioh, ready, &input, &pkts[..n]);
        let kernel = Ipv4Kernel {
            table,
            layout: self.table.layout(),
            input,
            slots: self.stage.slots(),
            output,
            n: n as u32,
        };
        let (kdone, _) = eng.launch(h2d, &kernel, n as u32);
        let (done, hops) = self.stage.download(eng, ioh, ready, kdone, &output, n);
        for (i, p) in pkts[..n].iter_mut().enumerate() {
            let hop = u16::from_le_bytes([hops[i * 2], hops[i * 2 + 1]]);
            self.lookups += 1;
            p.out_port = (hop != NO_ROUTE).then_some(PortId(hop));
        }
        for &i in &bad {
            pkts[i].out_port = None;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};
    use ps_net::ethernet::MacAddr;
    use ps_net::PacketBuilder;

    fn routes() -> Vec<Route4> {
        vec![
            Route4::new(0x0A000000, 8, 1),
            Route4::new(0x0A0B0000, 16, 2),
            Route4::new(0x00000000, 1, 6), // 0.0.0.0/1
            Route4::new(0x80000000, 1, 7), // 128.0.0.0/1
        ]
    }

    fn packet(dst: Ipv4Addr) -> Packet {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(9, 9, 9, 9),
            dst,
            100,
            200,
            64,
        );
        Packet::new(0, f, PortId(0), 0)
    }

    #[test]
    fn cpu_path_routes_and_decrements_ttl() {
        let mut app = Ipv4App::new(&routes());
        let mut pkts = vec![packet(Ipv4Addr::new(10, 11, 1, 1))];
        let r = app.pre_shade(&mut pkts);
        assert_eq!(r.dropped, 0);
        let cycles = app.process_cpu(&mut pkts);
        assert!(cycles > 0);
        assert_eq!(pkts[0].out_port, Some(PortId(2)));
        let ip = Ipv4Packet::new_unchecked(&pkts[0].data[ETH_LEN..]);
        assert_eq!(ip.ttl(), 63);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn gpu_path_agrees_with_cpu_path() {
        let mut app = Ipv4App::new(&routes());
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(64 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        app.setup_gpu(0, &mut eng);

        let dsts = [
            Ipv4Addr::new(10, 11, 1, 1),
            Ipv4Addr::new(10, 200, 0, 1),
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(200, 1, 1, 1),
        ];
        let mut gpu_pkts: Vec<Packet> = dsts.iter().map(|&d| packet(d)).collect();
        let mut cpu_pkts: Vec<Packet> = dsts.iter().map(|&d| packet(d)).collect();

        app.pre_shade(&mut gpu_pkts);
        let done = app.shade(0, &mut eng, &mut ioh, 0, &mut gpu_pkts);
        assert!(done > 0);

        app.pre_shade(&mut cpu_pkts);
        app.process_cpu(&mut cpu_pkts);

        let gpu_ports: Vec<_> = gpu_pkts.iter().map(|p| p.out_port).collect();
        let cpu_ports: Vec<_> = cpu_pkts.iter().map(|p| p.out_port).collect();
        assert_eq!(gpu_ports, cpu_ports);
        assert_eq!(
            gpu_ports,
            vec![
                Some(PortId(2)),
                Some(PortId(1)),
                Some(PortId(6)),
                Some(PortId(7)),
            ]
        );
    }

    #[test]
    fn fib_update_propagates_to_the_gpu_table() {
        let mut app = Ipv4App::new(&routes());
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(64 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        app.setup_gpu(0, &mut eng);

        let dst = Ipv4Addr::new(10, 11, 200, 1);
        let mut before = vec![packet(dst)];
        app.pre_shade(&mut before);
        app.shade(0, &mut eng, &mut ioh, 0, &mut before);
        assert_eq!(before[0].out_port, Some(PortId(2)), "pre-update: /16");

        // Control plane installs a more specific route at run time.
        app.install_route(Route4::new(0x0A0BC800, 24, 5));
        let mut after = vec![packet(dst)];
        app.pre_shade(&mut after);
        let t = app.shade(0, &mut eng, &mut ioh, 0, &mut after);
        assert!(t > 0);
        assert_eq!(after[0].out_port, Some(PortId(5)), "post-update: new /24");
        assert_eq!(app.lookup_host(u32::from(dst)), 5, "CPU table agrees");
    }

    #[test]
    fn truncated_frames_are_counted_drops_not_panics() {
        // Damage after classification (what wire corruption can do):
        // both execution paths must drop-and-count, never panic.
        let mut app = Ipv4App::new(&routes());
        let mut bad = packet(Ipv4Addr::new(10, 0, 0, 1));
        bad.data.truncate(ETH_LEN + 3);
        let mut pkts = vec![bad.clone(), packet(Ipv4Addr::new(10, 11, 1, 1))];
        app.process_cpu(&mut pkts);
        assert_eq!(app.malformed, 1);
        assert_eq!(pkts.len(), 1, "malformed frame removed as a drop");
        assert_eq!(pkts[0].out_port, Some(PortId(2)));

        let dev = ps_gpu::GpuDevice::gtx480_with_mem(64 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        app.setup_gpu(0, &mut eng);
        let mut pkts = vec![bad, packet(Ipv4Addr::new(10, 11, 1, 1))];
        app.shade(0, &mut eng, &mut ioh, 0, &mut pkts);
        assert_eq!(app.malformed, 2);
        assert_eq!(pkts[0].out_port, None);
        assert_eq!(pkts[1].out_port, Some(PortId(2)));
    }

    #[test]
    fn malformed_packets_dropped_in_pre_shade() {
        let mut app = Ipv4App::new(&routes());
        let mut bad = packet(Ipv4Addr::new(10, 0, 0, 1));
        bad.data[ETH_LEN + 12] ^= 0xFF; // corrupt checksum
        let mut pkts = vec![bad, packet(Ipv4Addr::new(10, 0, 0, 1))];
        let r = app.pre_shade(&mut pkts);
        assert_eq!(r.dropped, 1);
        assert_eq!(pkts.len(), 1);
    }
}
