//! The applications evaluated in §6 — minimal forwarding (the packet
//! I/O experiments of §4.6), IPv4/IPv6 forwarding, OpenFlow switching
//! and IPsec tunneling — plus the stateful NFV tier (DESIGN.md §10):
//! a NAT/connection tracker and an L4 load balancer over the cuckoo
//! flow cache. Each app has a CPU-only path and a GPU shading path
//! over the same functional code.

mod ipsec;
mod ipv4;
mod ipv6;
mod lb;
mod minimal;
mod nat;
mod openflow;
mod stateful;

pub use ipsec::IpsecApp;
pub use ipv4::Ipv4App;
pub use ipv6::Ipv6App;
pub use lb::{Backend, LbApp};
pub use minimal::{ForwardPattern, MinimalApp};
pub use nat::{ConnState, NatApp, NatBinding};
pub use openflow::OpenFlowApp;

/// Account for re-parsing ("revalidating") a frame mid-pipeline.
///
/// Pre-shading already validated every frame, but fault injection can
/// corrupt bytes *between* pipeline stages (ps-fault's corrupt-frame
/// class), so no stage trusts a previous stage's parse. Each
/// application re-parses in both its CPU path and its GPU staging
/// loop and routes the result through here: a failure bumps the
/// app's `malformed` counter exactly once, and the caller applies its
/// own sentinel (drop the packet, stage a zero slot, …).
pub(crate) fn revalidate<T>(malformed: &mut u64, parsed: Option<T>) -> Option<T> {
    if parsed.is_none() {
        *malformed += 1;
    }
    parsed
}

/// Effective DRAM latency (ns) for a random access into a multi-MB
/// table image: row miss + TLB walk on Nehalem. Used by the CPU-only
/// lookup paths; see EXPERIMENTS.md calibration notes.
pub const TABLE_MISS_NS: u64 = 105;

/// Cycles per nanosecond at 2.66 GHz, for converting latency into the
/// cycle budgets the worker model charges.
pub const CYCLES_PER_NS: f64 = 2.66;

/// In-router software-pipelining overlap for dependent table misses:
/// the batch loop interleaves packets, but I/O work competes for MSHRs
/// (cf. the tight lookup-only loop of Figure 2, which reaches ~3x).
pub const ROUTER_LOOKUP_OVERLAP: f64 = 1.3;
