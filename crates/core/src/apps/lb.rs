//! L4 load balancer — the second stateful NF of the NFV tier
//! (DESIGN.md §10).
//!
//! Incoming IPv4 UDP/TCP flows are spread over a backend set by
//! rendezvous (highest-random-weight) hashing: each flow scores every
//! backend with a deterministic mix of its cuckoo hash and the
//! backend's index, and the highest score wins. The chosen backend is
//! pinned in a per-NUMA-node [`FlowCache`], so a flow stays on its
//! backend for its whole lifetime (*stickiness*) even while the
//! backend set changes — only flows whose winner disappeared are
//! remapped, the consistent-hashing property. The destination fields
//! are DNAT-rewritten in place with incremental checksums.
//!
//! State partitioning, the GPU hash offload, fault-induced state loss
//! and shard replication all follow the NAT app (see `nat.rs` and
//! DESIGN.md §10.3): per-RX-node caches make replicated runs
//! byte-identical to sequential ones.

use ps_flow::{FlowCache, FlowCacheStats};
use ps_gpu::{DeviceBuffer, GpuEngine, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_net::{classify, Verdict};
use ps_nic::port::PortId;
use ps_rng::splitmix64;
use ps_sim::time::Time;

use super::stateful::{parse_flow, rewrite_dst, stage_keys};
use crate::app::{App, PreShadeResult, ShardAffinity};
use crate::columns::{ColumnStage, FLOW_COLUMNS};
use crate::kernels::FlowHashKernel;

/// Per-packet pre-shading cycles: classification + 5-tuple parse.
const PRE_SHADE_CYCLES: u64 = 70;
/// Flow-hash cost on the CPU path (the work the GPU absorbs).
const HASH_CYCLES: u64 = 160;
/// Cuckoo probe (two buckets, LLC-resident ways).
const PROBE_CYCLES: u64 = 60;
/// Header rewrite + incremental checksum updates.
const REWRITE_CYCLES: u64 = 45;
/// Per-backend rendezvous score on a cache miss.
const SCORE_CYCLES: u64 = 8;
/// Per-relocation cost when an insert kicks residents around.
const KICK_CYCLES: u64 = 35;

/// Maximum packets one gathered launch stages (16 B keys).
pub const MAX_GATHER: usize = 65_536;

/// One backend server: where DNAT points the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Backend address.
    pub ip: u32,
    /// Backend L4 port.
    pub port: u16,
}

struct NodeGpu {
    input: DeviceBuffer,
    output: DeviceBuffer,
}

/// The L4 load-balancer application.
pub struct LbApp {
    backends: Vec<Backend>,
    per_node: Vec<FlowCache<u16>>,
    ports_per_node: u16,
    capacity: usize,
    idle_ns: Time,
    gpu: Vec<Option<NodeGpu>>,
    /// The 5-tuple column stage: gather/scatter buffers, mode-
    /// dependent transfer and PCIe byte accounting.
    stage: ColumnStage,
    /// Frames that no longer parsed at dispatch time; counted drops.
    pub malformed: u64,
    /// Pinned flows lost to GPU faults (summed over nodes).
    pub state_losses: u64,
    /// Packets whose pinned backend had left the set (remapped via a
    /// fresh rendezvous round).
    pub remaps: u64,
}

impl LbApp {
    /// A balancer over `backends` for a machine with `total_ports`
    /// ports split over `nodes` NUMA nodes, pinning up to `capacity`
    /// flows per node with `idle_ns` virtual-clock expiry (`0` =
    /// never).
    pub fn new(
        backends: Vec<Backend>,
        total_ports: u16,
        nodes: usize,
        capacity: usize,
        idle_ns: Time,
    ) -> LbApp {
        assert!(!backends.is_empty());
        assert!(nodes > 0 && total_ports as usize >= nodes * 2);
        LbApp {
            backends,
            per_node: (0..nodes)
                .map(|_| FlowCache::new(capacity, idle_ns))
                .collect(),
            ports_per_node: total_ports / nodes as u16,
            capacity,
            idle_ns,
            gpu: Vec::new(),
            stage: ColumnStage::new(FLOW_COLUMNS),
            malformed: 0,
            state_losses: 0,
            remaps: 0,
        }
    }

    /// Rendezvous winner for flow hash `h` over `n` backends: the
    /// index with the highest per-(flow, backend) score. Removing any
    /// *other* backend cannot change a flow's winner — the consistent
    /// hashing property the stickiness test pins.
    pub fn select(h: u64, n: usize) -> u16 {
        let mut best = 0u16;
        let mut best_score = 0u64;
        for i in 0..n {
            let mut s = h ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let score = splitmix64(&mut s);
            if score > best_score {
                best_score = score;
                best = i as u16;
            }
        }
        best
    }

    /// Drain one backend (server taken out of rotation). Flows pinned
    /// to it are remapped lazily on their next packet; everyone else
    /// keeps their backend.
    pub fn remove_backend(&mut self, idx: u16) {
        // Tombstone rather than swap-remove: surviving indices — and
        // therefore every other flow's rendezvous winner — keep their
        // meaning.
        self.backends[idx as usize] = Backend { ip: 0, port: 0 };
    }

    fn is_live(&self, idx: u16) -> bool {
        self.backends.get(idx as usize).is_some_and(|b| b.ip != 0)
    }

    /// Rendezvous over live backends only.
    fn select_live(&self, h: u64) -> Option<u16> {
        let mut best: Option<(u64, u16)> = None;
        for i in 0..self.backends.len() {
            if self.backends[i].ip == 0 {
                continue;
            }
            let mut s = h ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let score = splitmix64(&mut s);
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, i as u16));
            }
        }
        best.map(|(_, i)| i)
    }

    fn node_of(&self, port: PortId) -> usize {
        (port.0 / self.ports_per_node) as usize % self.per_node.len()
    }

    /// Pinned flows across all nodes.
    pub fn occupancy(&self) -> usize {
        self.per_node.iter().map(FlowCache::occupancy).sum()
    }

    /// Flow-cache counters summed over nodes.
    pub fn cache_stats(&self) -> FlowCacheStats {
        let mut s = FlowCacheStats::default();
        for c in self.per_node.iter().map(FlowCache::stats) {
            s.lookups += c.lookups;
            s.hits += c.hits;
            s.misses += c.misses;
            s.inserts += c.inserts;
            s.updates += c.updates;
            s.evictions += c.evictions;
            s.expiries += c.expiries;
            s.displacements += c.displacements;
            s.max_depth = s.max_depth.max(c.max_depth);
        }
        s
    }

    /// Dispatch one packet with its flow hash already computed; the
    /// shared core of both execution paths (see `nat.rs`).
    fn dispatch(&mut self, p: &mut Packet, hash: u64) -> u64 {
        let Some(pf) = super::revalidate(&mut self.malformed, parse_flow(&p.data)) else {
            p.out_port = None;
            return PROBE_CYCLES;
        };
        let node = self.node_of(p.in_port);
        let now = p.arrival;
        let mut cycles = PROBE_CYCLES + REWRITE_CYCLES;
        let pinned = self.per_node[node]
            .lookup_prehash(hash, &pf.tuple, now)
            .copied();
        let idx = match pinned {
            Some(idx) if self.is_live(idx) => idx,
            stale => {
                if stale.is_some() {
                    self.remaps += 1;
                }
                cycles += SCORE_CYCLES * self.backends.len() as u64;
                let Some(idx) = self.select_live(hash) else {
                    // No live backend: shed the connection.
                    p.out_port = None;
                    return cycles;
                };
                let r = self.per_node[node].insert_prehash(hash, pf.tuple, now, idx);
                cycles += KICK_CYCLES * u64::from(r.displaced);
                idx
            }
        };
        let b = self.backends[idx as usize];
        rewrite_dst(&mut p.data, &pf, b.ip, b.port);
        p.out_port = Some(PortId(p.in_port.0 ^ 1));
        cycles
    }
}

impl App for LbApp {
    fn name(&self) -> &str {
        "lb"
    }

    fn set_staging(&mut self, mode: Staging) {
        self.stage.set_mode(mode);
    }

    fn staging_totals(&self) -> Option<(u64, u64, u64)> {
        Some(self.stage.totals())
    }

    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine) {
        if self.gpu.len() <= node {
            self.gpu.resize_with(node + 1, || None);
        }
        let input = self.stage.alloc_input(eng, MAX_GATHER);
        let output = self.stage.alloc_output(eng, MAX_GATHER);
        self.gpu[node] = Some(NodeGpu { input, output });
    }

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        let mut r = PreShadeResult::default();
        pkts.retain(|p| match classify(&p.data, &[]) {
            Verdict::FastPath if parse_flow(&p.data).is_some() => true,
            Verdict::FastPath | Verdict::SlowPath(_) => {
                r.slow_path += 1;
                false
            }
            Verdict::Drop(_) => {
                r.dropped += 1;
                false
            }
        });
        r.cycles = PRE_SHADE_CYCLES * (pkts.len() as u64 + r.dropped + r.slow_path);
        r
    }

    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64 {
        let mut cycles = 0;
        for p in pkts.iter_mut() {
            let hash = match parse_flow(&p.data) {
                Some(pf) => ps_flow::flow_hash(&pf.tuple),
                None => 0,
            };
            cycles += HASH_CYCLES + self.dispatch(p, hash);
        }
        pkts.retain(|p| p.out_port.is_some());
        cycles
    }

    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time {
        let n = pkts.len().min(MAX_GATHER);
        let g = self.gpu[node].as_ref().expect("setup_gpu ran");
        let (input, output) = (g.input, g.output);
        let slots = self.stage.slots();
        stage_keys(&mut self.malformed, &pkts[..n], self.stage.begin());
        let h2d = self.stage.upload(eng, ioh, ready, &input, &pkts[..n]);
        let kernel = FlowHashKernel {
            input,
            slots,
            output,
            n: n as u32,
        };
        let (kdone, _) = eng.launch(h2d, &kernel, n as u32);
        let (done, _) = self.stage.download(eng, ioh, ready, kdone, &output, n);
        let out = self.stage.take_out();
        for (i, p) in pkts[..n].iter_mut().enumerate() {
            let hash = u64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().expect("fixed"));
            self.dispatch(p, hash);
        }
        self.stage.give_out(out);

        let st = self.per_node[node].stats();
        let occ = self.per_node[node].occupancy() as u64;
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_occupancy",
            node as u32,
            done,
            occ,
        );
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_evictions",
            node as u32,
            done,
            st.evictions,
        );
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_expiries",
            node as u32,
            done,
            st.expiries,
        );
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_kick_depth",
            node as u32,
            done,
            st.max_depth,
        );
        done
    }

    fn post_shade_cycles(&self, n: usize) -> u64 {
        (PROBE_CYCLES + REWRITE_CYCLES) * n as u64
    }

    fn on_gpu_fault(&mut self, node: usize) {
        if let Some(c) = self.per_node.get_mut(node) {
            self.state_losses += c.flush();
        }
    }

    fn shard_replica(&self) -> Option<(Self, ShardAffinity)> {
        Some((
            LbApp::new(
                self.backends.clone(),
                self.ports_per_node * self.per_node.len() as u16,
                self.per_node.len(),
                self.capacity,
                self.idle_ns,
            ),
            ShardAffinity::NodeLocal,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};
    use ps_net::ethernet::MacAddr;
    use ps_net::ethernet::HEADER_LEN as ETH_LEN;
    use ps_net::{Ipv4Packet, PacketBuilder, UdpDatagram};
    use std::net::Ipv4Addr;

    fn backends(n: u32) -> Vec<Backend> {
        (0..n)
            .map(|i| Backend {
                ip: 0x0A63_0001 + i,
                port: 8080,
            })
            .collect()
    }

    fn udp(src: u32, sport: u16, in_port: u16) -> Packet {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::from(src),
            Ipv4Addr::new(198, 51, 100, 1), // the VIP
            sport,
            80,
            64,
        );
        Packet::new(0, f, PortId(in_port), 0)
    }

    fn app(n: u32) -> LbApp {
        LbApp::new(backends(n), 8, 2, 1 << 16, 0)
    }

    fn dst(p: &Packet) -> (u32, u16) {
        let ip = Ipv4Packet::new_unchecked(&p.data[ETH_LEN..]);
        let udp = UdpDatagram::new_unchecked(&p.data[ETH_LEN + 20..]);
        (u32::from(ip.dst()), udp.dst_port())
    }

    #[test]
    fn flows_spread_over_backends_and_stick() {
        let mut a = app(8);
        let mut pkts: Vec<Packet> = (0..256u32).map(|i| udp(0x0A000000 + i, 5000, 0)).collect();
        a.pre_shade(&mut pkts);
        a.process_cpu(&mut pkts);
        let used: std::collections::HashSet<u32> = pkts.iter().map(|p| dst(p).0).collect();
        assert!(used.len() >= 6, "256 flows spread over most of 8 backends");
        for p in &pkts {
            assert!(Ipv4Packet::new_unchecked(&p.data[ETH_LEN..]).verify_checksum());
        }
        // Stickiness: the same flows dispatch to the same backends.
        let first: Vec<(u32, u16)> = pkts.iter().map(dst).collect();
        let mut again: Vec<Packet> = (0..256u32).map(|i| udp(0x0A000000 + i, 5000, 0)).collect();
        a.process_cpu(&mut again);
        assert_eq!(first, again.iter().map(dst).collect::<Vec<_>>());
        assert_eq!(a.cache_stats().hits, 256);
    }

    #[test]
    fn removing_a_backend_only_remaps_its_flows() {
        let mut a = app(8);
        let mut pkts: Vec<Packet> = (0..256u32).map(|i| udp(0x0A000000 + i, 5000, 0)).collect();
        a.process_cpu(&mut pkts);
        let before: Vec<(u32, u16)> = pkts.iter().map(dst).collect();
        let victim = before[0].0;
        let victim_idx = (victim - 0x0A63_0001) as u16;
        a.remove_backend(victim_idx);
        let mut again: Vec<Packet> = (0..256u32).map(|i| udp(0x0A000000 + i, 5000, 0)).collect();
        a.process_cpu(&mut again);
        for (b, p) in before.iter().zip(&again) {
            if b.0 == victim {
                assert_ne!(dst(p).0, victim, "drained backend gets nothing");
            } else {
                assert_eq!(dst(p), *b, "surviving flows keep their backend");
            }
        }
        assert!(a.remaps > 0);
    }

    #[test]
    fn rendezvous_is_consistent() {
        // Dropping the *last* backend only remaps flows it owned.
        for h in [1u64, 99, 0xDEAD_BEEF, u64::MAX] {
            let with8 = LbApp::select(h, 8);
            let with7 = LbApp::select(h, 7);
            if with8 != 7 {
                assert_eq!(with8, with7, "hash {h:#x}");
            }
        }
    }

    #[test]
    fn gpu_path_agrees_with_cpu_path() {
        let mut cpu = app(4);
        let mut gpu = app(4);
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(32 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        gpu.setup_gpu(0, &mut eng);
        let mk = || {
            (0..64u32)
                .map(|i| udp(0x0A000000 + i % 20, 5000, 0))
                .collect::<Vec<_>>()
        };
        let (mut a, mut b) = (mk(), mk());
        cpu.pre_shade(&mut a);
        cpu.process_cpu(&mut a);
        gpu.pre_shade(&mut b);
        let done = gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);
        assert!(done > 0);
        let frames = |v: &[Packet]| {
            v.iter()
                .map(|p| (p.data.clone(), p.out_port))
                .collect::<Vec<_>>()
        };
        assert_eq!(frames(&a), frames(&b));
        assert_eq!(cpu.occupancy(), gpu.occupancy());
    }

    #[test]
    fn gpu_fault_loses_pins_but_rendezvous_heals_them() {
        let mut a = app(4);
        let mut pkts: Vec<Packet> = (0..32u32).map(|i| udp(0x0A000000 + i, 5000, 0)).collect();
        a.process_cpu(&mut pkts);
        let before: Vec<(u32, u16)> = pkts.iter().map(dst).collect();
        a.on_gpu_fault(0);
        assert_eq!(a.occupancy(), 0);
        assert_eq!(a.state_losses, 32);
        // The backend set is intact, so rendezvous re-derives the
        // same winners: state loss degrades nothing here.
        let mut again: Vec<Packet> = (0..32u32).map(|i| udp(0x0A000000 + i, 5000, 0)).collect();
        a.process_cpu(&mut again);
        assert_eq!(before, again.iter().map(dst).collect::<Vec<_>>());
    }
}
