//! IPv6 forwarding (§6.2.2): binary search on prefix lengths, the
//! memory-intensive workload where GPU latency hiding shines.

use ps_gpu::{DeviceBuffer, GpuEngine, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_lookup::mem::{CountingMem, SliceMem};
use ps_lookup::route::Route6;
use ps_lookup::waldvogel::{self, V6Table};
use ps_lookup::NO_ROUTE;
use ps_net::ethernet::HEADER_LEN as ETH_LEN;
use ps_net::ipv6::Ipv6Packet;
use ps_net::{classify, Verdict};
use ps_nic::port::PortId;
use ps_sim::time::Time;

use super::{CYCLES_PER_NS, ROUTER_LOOKUP_OVERLAP, TABLE_MISS_NS};
use crate::app::{App, PreShadeResult};
use crate::columns::{ColumnStage, IPV6_COLUMNS};
use crate::kernels::Ipv6Kernel;

/// Per-packet pre-shading cycles (IPv6 parses a bigger header and
/// stages 16 B per packet).
const PRE_SHADE_CYCLES: u64 = 65;

/// Maximum packets one gathered launch stages (16 B per packet).
pub const MAX_GATHER: usize = 65_536;

struct NodeGpu {
    table: DeviceBuffer,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

/// The IPv6 router application.
pub struct Ipv6App {
    table: V6Table,
    gpu: Vec<Option<NodeGpu>>,
    /// The destination-address column stage: gather/scatter buffers
    /// (zero-alloc in steady state), mode-dependent transfer and PCIe
    /// byte accounting.
    stage: ColumnStage,
    /// Lookups performed.
    pub lookups: u64,
    /// Frames whose bytes no longer parsed at lookup time (fault
    /// injection can damage a frame after classification); each is a
    /// counted drop, never a panic.
    pub malformed: u64,
}

impl Ipv6App {
    /// Build over a route list whose hops are output-port indices.
    pub fn new(routes: &[Route6]) -> Ipv6App {
        Ipv6App {
            table: V6Table::build(routes),
            gpu: Vec::new(),
            stage: ColumnStage::new(IPV6_COLUMNS),
            lookups: 0,
            malformed: 0,
        }
    }

    /// Host-side lookup.
    pub fn lookup_host(&self, addr: u128) -> u16 {
        self.table.lookup_host(addr)
    }

    fn ensure_node(&mut self, node: usize) {
        if self.gpu.len() <= node {
            self.gpu.resize_with(node + 1, || None);
        }
    }
}

/// The revalidation parse (see [`super::revalidate`]): both lookup
/// paths re-read the destination address (as its big-endian octets,
/// which is also the GPU staging layout) from the raw frame.
fn dst_addr(data: &[u8]) -> Option<[u8; 16]> {
    let ip = Ipv6Packet::new_checked(data.get(ETH_LEN..)?).ok()?;
    Some(ip.dst().octets())
}

impl App for Ipv6App {
    fn name(&self) -> &str {
        "ipv6"
    }

    fn set_staging(&mut self, mode: Staging) {
        self.stage.set_mode(mode);
    }

    fn staging_totals(&self) -> Option<(u64, u64, u64)> {
        Some(self.stage.totals())
    }

    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine) {
        self.ensure_node(node);
        let table = eng.dev.mem.alloc(self.table.image().len().max(64));
        eng.dev.mem.write(&table, 0, self.table.image());
        let input = self.stage.alloc_input(eng, MAX_GATHER);
        let output = self.stage.alloc_output(eng, MAX_GATHER);
        self.gpu[node] = Some(NodeGpu {
            table,
            input,
            output,
        });
    }

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        let mut r = PreShadeResult::default();
        pkts.retain_mut(|p| match classify(&p.data, &[]) {
            Verdict::FastPath => {
                let mut ip = Ipv6Packet::new_unchecked(&mut p.data[ETH_LEN..]);
                ip.decrement_hop_limit();
                true
            }
            Verdict::SlowPath(_) => {
                r.slow_path += 1;
                false
            }
            Verdict::Drop(_) => {
                r.dropped += 1;
                false
            }
        });
        r.cycles = PRE_SHADE_CYCLES * (pkts.len() as u64 + r.dropped + r.slow_path);
        r
    }

    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64 {
        let mut accesses = 0u64;
        for p in pkts.iter_mut() {
            let Some(dst) = super::revalidate(&mut self.malformed, dst_addr(&p.data)) else {
                p.out_port = None;
                continue;
            };
            let dst = u128::from_be_bytes(dst);
            let mut mem = CountingMem::new(SliceMem::new(self.table.image()));
            let hop = waldvogel::lookup(self.table.layout(), &mut mem, dst);
            accesses += mem.accesses;
            self.lookups += 1;
            p.out_port = (hop != NO_ROUTE).then_some(PortId(hop));
        }
        pkts.retain(|p| p.out_port.is_some());
        // Seven dependent probes per packet, each a table miss plus
        // ~16 hash ops.
        let miss_ns = accesses as f64 * TABLE_MISS_NS as f64 / ROUTER_LOOKUP_OVERLAP;
        (miss_ns * CYCLES_PER_NS) as u64 + (16 * accesses + 30 * pkts.len() as u64)
    }

    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time {
        let n = pkts.len().min(MAX_GATHER);
        let g = self.gpu[node].as_ref().expect("setup_gpu ran");
        let (table, input, output) = (g.table, g.input, g.output);
        // Gather the destination-address column into the stage's
        // reused buffer.
        let staged = self.stage.begin();
        // Indices whose frames failed to re-parse (a sentinel address
        // is staged so the batch layout stays fixed). Empty — and
        // allocation-free — for healthy traffic.
        let mut bad: Vec<usize> = Vec::new();
        for (i, p) in pkts[..n].iter().enumerate() {
            match super::revalidate(&mut self.malformed, dst_addr(&p.data)) {
                Some(dst) => staged.extend_from_slice(&dst),
                None => {
                    bad.push(i);
                    staged.extend_from_slice(&[0u8; 16]);
                }
            }
        }
        let h2d = self.stage.upload(eng, ioh, ready, &input, &pkts[..n]);
        let kernel = Ipv6Kernel {
            table,
            layout: self.table.layout().clone(),
            input,
            slots: self.stage.slots(),
            output,
            n: n as u32,
        };
        let (kdone, _) = eng.launch(h2d, &kernel, n as u32);
        let (done, hops) = self.stage.download(eng, ioh, ready, kdone, &output, n);
        for (i, p) in pkts[..n].iter_mut().enumerate() {
            let hop = u16::from_le_bytes([hops[i * 2], hops[i * 2 + 1]]);
            self.lookups += 1;
            p.out_port = (hop != NO_ROUTE).then_some(PortId(hop));
        }
        for &i in &bad {
            pkts[i].out_port = None;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};
    use ps_net::ethernet::MacAddr;
    use ps_net::PacketBuilder;
    use std::net::Ipv6Addr;

    fn routes() -> Vec<Route6> {
        vec![
            Route6::new(0x2001_0db8u128 << 96, 32, 2),
            Route6::new(0x2000u128 << 112, 4, 1), // 2000::/4 covers GUA
        ]
    }

    fn packet(dst: Ipv6Addr) -> Packet {
        let f = PacketBuilder::udp_v6(
            MacAddr::local(1),
            MacAddr::local(2),
            "2001:db8::99".parse().unwrap(),
            dst,
            100,
            200,
            80,
        );
        Packet::new(0, f, PortId(0), 0)
    }

    #[test]
    fn cpu_path_routes_and_decrements_hop_limit() {
        let mut app = Ipv6App::new(&routes());
        let mut pkts = vec![packet("2001:db8::1".parse().unwrap())];
        app.pre_shade(&mut pkts);
        let cycles = app.process_cpu(&mut pkts);
        assert!(cycles > 100, "probes should cost real cycles: {cycles}");
        assert_eq!(pkts[0].out_port, Some(PortId(2)));
        let ip = Ipv6Packet::new_unchecked(&pkts[0].data[ETH_LEN..]);
        assert_eq!(ip.hop_limit(), 63);
    }

    #[test]
    fn gpu_path_agrees_with_cpu_path() {
        let mut app = Ipv6App::new(&routes());
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(64 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        app.setup_gpu(0, &mut eng);

        let dsts: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:dead::1".parse().unwrap(),
            "2abc::9".parse().unwrap(),
        ];
        let mut gpu_pkts: Vec<Packet> = dsts.iter().map(|&d| packet(d)).collect();
        let mut cpu_pkts: Vec<Packet> = dsts.iter().map(|&d| packet(d)).collect();
        app.pre_shade(&mut gpu_pkts);
        app.shade(0, &mut eng, &mut ioh, 0, &mut gpu_pkts);
        app.pre_shade(&mut cpu_pkts);
        app.process_cpu(&mut cpu_pkts);
        let g: Vec<_> = gpu_pkts.iter().map(|p| p.out_port).collect();
        let c: Vec<_> = cpu_pkts.iter().map(|p| p.out_port).collect();
        assert_eq!(g, c);
        assert_eq!(g, vec![Some(PortId(2)), Some(PortId(1)), Some(PortId(1))]);
    }
}
