//! Source NAT with connection tracking — the first stateful NF of
//! the NFV tier (DESIGN.md §10).
//!
//! Every outbound IPv4 UDP/TCP flow gets a binding in a per-NUMA-node
//! cuckoo [`FlowCache`]: an external `(address, port)` drawn from the
//! node's public pool, plus a coarse connection state driven by TCP
//! flags (UDP flows promote to established on their second packet).
//! The source fields are rewritten in place with incremental
//! checksums; translated packets leave through the node-local port
//! pair, so the app shards barrier-free ([`ShardAffinity::NodeLocal`]).
//!
//! State is partitioned by *RX NUMA node* (`in_port / ports_per_node`)
//! — never global — which is what makes replicated execution
//! deterministic: each node's packet order is identical in sequential
//! and sharded runs, so each node's table evolves identically
//! (DESIGN.md §10.3).

use ps_flow::{FlowCache, FlowCacheStats};
use ps_gpu::{DeviceBuffer, GpuEngine, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_net::tcp::TcpFlags;
use ps_net::{classify, Verdict};
use ps_nic::port::PortId;
use ps_sim::time::Time;

use super::stateful::{parse_flow, rewrite_src, stage_keys};
use crate::app::{App, PreShadeResult, ShardAffinity};
use crate::columns::{ColumnStage, FLOW_COLUMNS};
use crate::kernels::FlowHashKernel;

/// Per-packet pre-shading cycles: classification + 5-tuple parse.
const PRE_SHADE_CYCLES: u64 = 70;
/// Flow-hash cost on the CPU path (the work the GPU absorbs).
const HASH_CYCLES: u64 = 160;
/// Cuckoo probe (two buckets, LLC-resident ways).
const PROBE_CYCLES: u64 = 60;
/// Header rewrite + incremental checksum updates.
const REWRITE_CYCLES: u64 = 45;
/// Per-relocation cost when an insert kicks residents around.
const KICK_CYCLES: u64 = 35;

/// Maximum packets one gathered launch stages (16 B keys).
pub const MAX_GATHER: usize = 65_536;

/// Usable external ports per public address (1024..=65535).
const PORTS_PER_IP: u32 = 64_512;
/// First usable external port.
const PORT_MIN: u16 = 1024;

/// Coarse connection state the tracker keeps per binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// First packet seen (TCP SYN, or any first UDP datagram).
    New,
    /// Bidirectional-capable: second packet (UDP) or first non-SYN
    /// segment (TCP) observed.
    Established,
    /// A FIN passed; the binding is released on the closing ACK.
    FinWait,
}

/// One NAT binding: which external `(address, port)` the flow owns,
/// encoded as an allocation index into the node's pool.
#[derive(Debug, Clone, Copy)]
pub struct NatBinding {
    ext_id: u32,
    /// Tracker state.
    pub state: ConnState,
}

/// Per-node translator state: the flow cache plus the external
/// address/port allocator (LIFO free list over a monotonic high-water
/// counter — both pure functions of the node's packet order).
struct NodeState {
    cache: FlowCache<NatBinding>,
    free: Vec<u32>,
    next_id: u32,
    /// Base of the node's public pool (`203.0.113.0`-style, one /24
    /// stride per node).
    pool_base: u32,
}

impl NodeState {
    fn new(node: usize, capacity: usize, idle_ns: Time) -> NodeState {
        NodeState {
            cache: FlowCache::new(capacity, idle_ns),
            free: Vec::new(),
            next_id: 0,
            // A /16 stride per node: room for the multi-address pool
            // a million-flow table needs (~16 addresses per node).
            pool_base: 0xCB71_0000 + ((node as u32) << 16),
        }
    }

    fn alloc(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        })
    }

    fn ext_addr(&self, id: u32) -> (u32, u16) {
        (
            self.pool_base + id / PORTS_PER_IP,
            PORT_MIN + (id % PORTS_PER_IP) as u16,
        )
    }
}

struct NodeGpu {
    input: DeviceBuffer,
    output: DeviceBuffer,
}

/// The NAT / connection-tracker application.
pub struct NatApp {
    per_node: Vec<NodeState>,
    ports_per_node: u16,
    capacity: usize,
    idle_ns: Time,
    gpu: Vec<Option<NodeGpu>>,
    /// The 5-tuple column stage: gather/scatter buffers, mode-
    /// dependent transfer and PCIe byte accounting.
    stage: ColumnStage,
    /// Frames that no longer parsed at translation time (fault
    /// injection can damage them mid-pipeline); counted drops.
    pub malformed: u64,
    /// Bindings lost to GPU faults (state-loss events, summed over
    /// nodes).
    pub state_losses: u64,
}

impl NatApp {
    /// A translator for a machine with `total_ports` ports split over
    /// `nodes` NUMA nodes, keeping up to `capacity` bindings per node
    /// that expire after `idle_ns` of virtual-clock silence (`0` =
    /// never).
    pub fn new(total_ports: u16, nodes: usize, capacity: usize, idle_ns: Time) -> NatApp {
        assert!(nodes > 0 && total_ports as usize >= nodes * 2);
        NatApp {
            per_node: (0..nodes)
                .map(|n| NodeState::new(n, capacity, idle_ns))
                .collect(),
            ports_per_node: total_ports / nodes as u16,
            capacity,
            idle_ns,
            gpu: Vec::new(),
            stage: ColumnStage::new(FLOW_COLUMNS),
            malformed: 0,
            state_losses: 0,
        }
    }

    fn node_of(&self, port: PortId) -> usize {
        (port.0 / self.ports_per_node) as usize % self.per_node.len()
    }

    /// Live bindings across all nodes.
    pub fn occupancy(&self) -> usize {
        self.per_node.iter().map(|n| n.cache.occupancy()).sum()
    }

    /// Flow-cache counters summed over nodes.
    pub fn cache_stats(&self) -> FlowCacheStats {
        let mut s = FlowCacheStats::default();
        for n in &self.per_node {
            let c = n.cache.stats();
            s.lookups += c.lookups;
            s.hits += c.hits;
            s.misses += c.misses;
            s.inserts += c.inserts;
            s.updates += c.updates;
            s.evictions += c.evictions;
            s.expiries += c.expiries;
            s.displacements += c.displacements;
            s.max_depth = s.max_depth.max(c.max_depth);
        }
        s
    }

    /// Translate one packet with its flow hash already computed.
    /// Returns the cycle charge. The shared core of both execution
    /// paths: CPU-only hashes on the host, the GPU path feeds the
    /// device-computed hash in — identical table evolution either way.
    fn translate(&mut self, p: &mut Packet, hash: u64) -> u64 {
        let Some(pf) = super::revalidate(&mut self.malformed, parse_flow(&p.data)) else {
            p.out_port = None;
            return PROBE_CYCLES;
        };
        let node = self.node_of(p.in_port);
        let now = p.arrival;
        let ns = &mut self.per_node[node];
        let flags = TcpFlags(pf.tcp_flags);
        let mut cycles = PROBE_CYCLES + REWRITE_CYCLES;

        let binding = match ns.cache.lookup_prehash(hash, &pf.tuple, now) {
            Some(b) => {
                // Tracker transitions on the observed packet.
                if flags.0 & TcpFlags::RST != 0 {
                    let b = *b;
                    ns.cache.remove(&pf.tuple);
                    ns.free.push(b.ext_id);
                    b
                } else if flags.0 & TcpFlags::FIN != 0 {
                    b.state = ConnState::FinWait;
                    *b
                } else if b.state == ConnState::FinWait && flags.ack() {
                    // The closing ACK: translate it, then release.
                    let b = *b;
                    ns.cache.remove(&pf.tuple);
                    ns.free.push(b.ext_id);
                    b
                } else {
                    if b.state == ConnState::New {
                        b.state = ConnState::Established;
                    }
                    *b
                }
            }
            None => {
                let binding = NatBinding {
                    ext_id: ns.alloc(),
                    state: ConnState::New,
                };
                let r = ns.cache.insert_prehash(hash, pf.tuple, now, binding);
                cycles += KICK_CYCLES * u64::from(r.displaced);
                if let Some((_, old)) = r.evicted {
                    // The LRU victim's external address returns to the
                    // pool — bounded state, no leaks under churn.
                    ns.free.push(old.ext_id);
                }
                binding
            }
        };
        let (ip, port) = ns.ext_addr(binding.ext_id);
        rewrite_src(&mut p.data, &pf, ip, port);
        p.out_port = Some(PortId(p.in_port.0 ^ 1));
        cycles
    }
}

impl App for NatApp {
    fn name(&self) -> &str {
        "nat"
    }

    fn set_staging(&mut self, mode: Staging) {
        self.stage.set_mode(mode);
    }

    fn staging_totals(&self) -> Option<(u64, u64, u64)> {
        Some(self.stage.totals())
    }

    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine) {
        if self.gpu.len() <= node {
            self.gpu.resize_with(node + 1, || None);
        }
        let input = self.stage.alloc_input(eng, MAX_GATHER);
        let output = self.stage.alloc_output(eng, MAX_GATHER);
        self.gpu[node] = Some(NodeGpu { input, output });
    }

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        let mut r = PreShadeResult::default();
        pkts.retain(|p| match classify(&p.data, &[]) {
            Verdict::FastPath if parse_flow(&p.data).is_some() => true,
            Verdict::FastPath | Verdict::SlowPath(_) => {
                // Non-IPv4 / non-UDP/TCP traffic is not translated;
                // the host stack handles it.
                r.slow_path += 1;
                false
            }
            Verdict::Drop(_) => {
                r.dropped += 1;
                false
            }
        });
        r.cycles = PRE_SHADE_CYCLES * (pkts.len() as u64 + r.dropped + r.slow_path);
        r
    }

    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64 {
        let mut cycles = 0;
        for p in pkts.iter_mut() {
            let hash = match parse_flow(&p.data) {
                Some(pf) => ps_flow::flow_hash(&pf.tuple),
                None => 0, // translate() recounts the parse failure
            };
            cycles += HASH_CYCLES + self.translate(p, hash);
        }
        pkts.retain(|p| p.out_port.is_some());
        cycles
    }

    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time {
        let n = pkts.len().min(MAX_GATHER);
        let g = self.gpu[node].as_ref().expect("setup_gpu ran");
        let (input, output) = (g.input, g.output);
        let slots = self.stage.slots();
        stage_keys(&mut self.malformed, &pkts[..n], self.stage.begin());
        let h2d = self.stage.upload(eng, ioh, ready, &input, &pkts[..n]);
        let kernel = FlowHashKernel {
            input,
            slots,
            output,
            n: n as u32,
        };
        let (kdone, _) = eng.launch(h2d, &kernel, n as u32);
        let (done, _) = self.stage.download(eng, ioh, ready, kdone, &output, n);
        let out = self.stage.take_out();

        // Host-side table application in arrival order, with the
        // device-computed hashes (functional post-shading).
        for (i, p) in pkts[..n].iter_mut().enumerate() {
            let hash = u64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().expect("fixed"));
            self.translate(p, hash);
        }
        self.stage.give_out(out);

        let st = self.per_node[node].cache.stats();
        let occ = self.per_node[node].cache.occupancy() as u64;
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_occupancy",
            node as u32,
            done,
            occ,
        );
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_evictions",
            node as u32,
            done,
            st.evictions,
        );
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_expiries",
            node as u32,
            done,
            st.expiries,
        );
        ps_trace::counter(
            ps_trace::Category::Flow,
            "flow_kick_depth",
            node as u32,
            done,
            st.max_depth,
        );
        done
    }

    fn post_shade_cycles(&self, n: usize) -> u64 {
        (PROBE_CYCLES + REWRITE_CYCLES) * n as u64
    }

    fn on_gpu_fault(&mut self, node: usize) {
        // The device context reset takes the node's synchronized flow
        // state with it: every binding is lost, flows re-establish
        // through the miss path. The allocator's high-water mark
        // survives (fresh bindings never collide with lost ones); the
        // free list is part of the lost state.
        if let Some(ns) = self.per_node.get_mut(node) {
            self.state_losses += ns.cache.flush();
            ns.free.clear();
        }
    }

    fn shard_replica(&self) -> Option<(Self, ShardAffinity)> {
        Some((
            NatApp::new(
                self.ports_per_node * self.per_node.len() as u16,
                self.per_node.len(),
                self.capacity,
                self.idle_ns,
            ),
            ShardAffinity::NodeLocal,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};
    use ps_net::ethernet::MacAddr;
    use ps_net::ethernet::HEADER_LEN as ETH_LEN;
    use ps_net::{Ipv4Packet, PacketBuilder, UdpDatagram};
    use std::net::Ipv4Addr;

    fn udp(src: u32, sport: u16, in_port: u16) -> Packet {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::from(src),
            Ipv4Addr::new(8, 8, 8, 8),
            sport,
            443,
            64,
        );
        Packet::new(0, f, PortId(in_port), 0)
    }

    fn tcp(src: u32, sport: u16, flags: u8, in_port: u16) -> Packet {
        // Hand-built TCP: reuse the UDP builder's IP framing, then
        // overwrite the L4 header (the builder has no TCP variant).
        let mut f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::from(src),
            Ipv4Addr::new(8, 8, 8, 8),
            sport,
            443,
            74,
        );
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut f[ETH_LEN..]);
            ip.set_protocol(ps_net::ipv4::protocol::TCP);
            ip.fill_checksum();
        }
        let l4 = ETH_LEN + 20;
        f[l4..].fill(0);
        f[l4..l4 + 2].copy_from_slice(&sport.to_be_bytes());
        f[l4 + 2..l4 + 4].copy_from_slice(&443u16.to_be_bytes());
        f[l4 + 12] = 5 << 4; // data offset
        f[l4 + 13] = flags;
        Packet::new(0, f, PortId(in_port), 0)
    }

    fn app() -> NatApp {
        NatApp::new(8, 2, 1 << 16, 0)
    }

    #[test]
    fn first_packet_binds_and_rewrites_source() {
        let mut a = app();
        let mut pkts = vec![udp(0x0A000001, 5000, 0)];
        a.pre_shade(&mut pkts);
        a.process_cpu(&mut pkts);
        let ip = Ipv4Packet::new_unchecked(&pkts[0].data[ETH_LEN..]);
        assert_eq!(u32::from(ip.src()), 0xCB71_0000, "node 0 pool base");
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_unchecked(&pkts[0].data[ETH_LEN + 20..]);
        assert_eq!(udp.src_port(), PORT_MIN);
        assert_eq!(pkts[0].out_port, Some(PortId(1)), "node-local pair");
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn same_flow_reuses_its_binding_distinct_flows_do_not() {
        let mut a = app();
        let mut pkts = vec![
            udp(0x0A000001, 5000, 0),
            udp(0x0A000001, 5000, 0),
            udp(0x0A000002, 5000, 0),
        ];
        a.pre_shade(&mut pkts);
        a.process_cpu(&mut pkts);
        let port = |p: &Packet| UdpDatagram::new_unchecked(&p.data[ETH_LEN + 20..]).src_port();
        assert_eq!(port(&pkts[0]), port(&pkts[1]), "sticky binding");
        assert_ne!(
            port(&pkts[0]),
            port(&pkts[2]),
            "distinct flow, distinct port"
        );
        assert_eq!(a.occupancy(), 2);
        assert_eq!(a.cache_stats().hits, 1);
    }

    #[test]
    fn udp_flows_promote_to_established() {
        let mut a = app();
        let mut first = vec![udp(0x0A000001, 5000, 0)];
        a.process_cpu(&mut first);
        let t = (0x0A000001u32, 0x08080808u32, 5000u16, 443u16, 17u8);
        assert_eq!(
            a.per_node[0].cache.lookup(&t, 0).map(|b| b.state),
            Some(ConnState::New)
        );
        let mut second = vec![udp(0x0A000001, 5000, 0)];
        a.process_cpu(&mut second);
        assert_eq!(
            a.per_node[0].cache.lookup(&t, 0).map(|b| b.state),
            Some(ConnState::Established)
        );
    }

    #[test]
    fn tcp_lifecycle_releases_the_binding() {
        let mut a = app();
        let syn = TcpFlags::SYN;
        let ack = TcpFlags::ACK;
        let fin = TcpFlags::FIN | TcpFlags::ACK;
        for flags in [syn, ack, ack] {
            let mut p = vec![tcp(0x0A000001, 6000, flags, 0)];
            a.process_cpu(&mut p);
            assert_eq!(p.len(), 1);
        }
        assert_eq!(a.occupancy(), 1);
        let mut p = vec![tcp(0x0A000001, 6000, fin, 0)];
        a.process_cpu(&mut p); // FIN -> FinWait
        assert_eq!(a.occupancy(), 1);
        let mut p = vec![tcp(0x0A000001, 6000, ack, 0)];
        a.process_cpu(&mut p); // closing ACK -> released
        assert_eq!(a.occupancy(), 0, "binding released after close");
        // The external port returns to the pool: the next flow gets it.
        let mut p = vec![udp(0x0A000009, 7000, 0)];
        a.process_cpu(&mut p);
        let port = UdpDatagram::new_unchecked(&p[0].data[ETH_LEN + 20..]).src_port();
        assert_eq!(port, PORT_MIN, "LIFO free list recycles the port");
    }

    #[test]
    fn rst_releases_immediately() {
        let mut a = app();
        let mut p = vec![tcp(0x0A000001, 6000, TcpFlags::SYN, 0)];
        a.process_cpu(&mut p);
        assert_eq!(a.occupancy(), 1);
        let mut p = vec![tcp(0x0A000001, 6000, TcpFlags::RST, 0)];
        a.process_cpu(&mut p);
        assert_eq!(a.occupancy(), 0);
    }

    #[test]
    fn state_is_partitioned_per_node() {
        let mut a = app();
        // Same 5-tuple arriving on both nodes: two independent
        // bindings from two independent pools.
        let mut pkts = vec![udp(0x0A000001, 5000, 0), udp(0x0A000001, 5000, 4)];
        a.pre_shade(&mut pkts);
        a.process_cpu(&mut pkts);
        let src = |p: &Packet| u32::from(Ipv4Packet::new_unchecked(&p.data[ETH_LEN..]).src());
        assert_eq!(src(&pkts[0]) >> 16, 0xCB71, "node 0 pool");
        assert_eq!(src(&pkts[1]) >> 16, 0xCB72, "node 1 pool");
        assert_eq!(a.per_node[0].cache.occupancy(), 1);
        assert_eq!(a.per_node[1].cache.occupancy(), 1);
    }

    #[test]
    fn gpu_path_agrees_with_cpu_path() {
        let mut cpu = app();
        let mut gpu = app();
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(32 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        gpu.setup_gpu(0, &mut eng);

        let mk = || {
            vec![
                udp(0x0A000001, 5000, 0),
                udp(0x0A000002, 5001, 1),
                udp(0x0A000001, 5000, 0),
                tcp(0x0A000003, 6000, TcpFlags::SYN, 2),
            ]
        };
        let mut a = mk();
        let mut b = mk();
        cpu.pre_shade(&mut a);
        cpu.process_cpu(&mut a);
        gpu.pre_shade(&mut b);
        let done = gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);
        assert!(done > 0);
        let frames = |v: &[Packet]| {
            v.iter()
                .map(|p| (p.data.clone(), p.out_port))
                .collect::<Vec<_>>()
        };
        assert_eq!(frames(&a), frames(&b), "byte-identical translations");
        assert_eq!(cpu.occupancy(), gpu.occupancy());
    }

    #[test]
    fn gpu_fault_loses_state_and_flows_reestablish() {
        let mut a = app();
        let mut pkts = vec![udp(0x0A000001, 5000, 0), udp(0x0A000002, 5001, 0)];
        a.process_cpu(&mut pkts);
        assert_eq!(a.occupancy(), 2);
        a.on_gpu_fault(0);
        assert_eq!(a.occupancy(), 0);
        assert_eq!(a.state_losses, 2);
        // Graceful re-sync: the same flow comes back through the miss
        // path with a fresh binding from the untouched high-water mark.
        let mut again = vec![udp(0x0A000001, 5000, 0)];
        a.process_cpu(&mut again);
        assert_eq!(a.occupancy(), 1);
        let port = UdpDatagram::new_unchecked(&again[0].data[ETH_LEN + 20..]).src_port();
        assert_eq!(port, PORT_MIN + 2, "post-loss bindings never collide");
    }

    #[test]
    fn idle_bindings_expire_on_the_virtual_clock() {
        let mut a = NatApp::new(8, 2, 1 << 10, 1_000);
        let mut p0 = vec![udp(0x0A000001, 5000, 0)];
        a.process_cpu(&mut p0); // arrival 0
        let mut late = vec![udp(0x0A000002, 6000, 0)];
        late[0].arrival = 10_000;
        a.process_cpu(&mut late);
        assert_eq!(
            a.per_node[0].cache.expire_idle(10_000),
            1,
            "first flow idled out"
        );
        assert_eq!(a.occupancy(), 1);
    }
}
