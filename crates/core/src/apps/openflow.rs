//! The OpenFlow switch application (§6.2.3): flow-key extraction and
//! exact matching on the CPU; hash computation and wildcard matching
//! offloaded to the GPU.

use ps_gpu::{DeviceBuffer, GpuEngine, Staging};
use ps_hw::ioh::Ioh;
use ps_io::Packet;
use ps_net::FlowKey;
use ps_nic::port::PortId;
use ps_openflow::{Action, OpenFlowSwitch, ENTRY_SIZE};
use ps_sim::time::Time;

use super::{CYCLES_PER_NS, TABLE_MISS_NS};
use crate::app::{App, PreShadeResult};
use crate::columns::{ColumnStage, OPENFLOW_COLUMNS};
use crate::kernels::{OpenFlowKernel, OF_NO_MATCH};

/// Flow-key extraction cycles per packet (header parsing + field
/// packing).
const KEY_EXTRACT_CYCLES: u64 = 80;
/// Flow-key hash on the CPU. The reference switch hashes the full
/// padded key structure per packet; ~160 cycles on Nehalem (the cost
/// the paper found worth offloading, §6.3).
const HASH_CYCLES: u64 = 160;
/// Exact-table probe when the bucket is cache-resident.
const EXACT_PROBE_CYCLES: u64 = 30;
/// Per-scanned-entry wildcard compare cost (entries are 64 B,
/// LLC-resident for the evaluated sizes).
const WILDCARD_ENTRY_CYCLES: u64 = 14;
/// LLC size for the cached-fraction estimate (8 MB on the X5550).
const LLC_BYTES: u64 = 8 << 20;
/// Approximate bytes per exact-table entry (key + action + bucket
/// overhead).
const EXACT_ENTRY_BYTES: u64 = 48;

/// Maximum packets one gathered launch stages (32 B keys).
pub const MAX_GATHER: usize = 65_536;

struct NodeGpu {
    wildcard: DeviceBuffer,
    n_wildcard: usize,
    shared_image: Option<std::sync::Arc<Vec<u8>>>,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

/// The OpenFlow switch application.
pub struct OpenFlowApp {
    /// The switch state (public so experiments can install flows).
    pub switch: OpenFlowSwitch,
    gpu: Vec<Option<NodeGpu>>,
    /// The flow-key column stage: gather/scatter buffers (zero-alloc
    /// in steady state), mode-dependent transfer and PCIe byte
    /// accounting.
    stage: ColumnStage,
    /// Frames whose flow key no longer extracted at lookup time
    /// (fault injection can damage a frame after classification);
    /// each is a counted drop, never a panic.
    pub malformed: u64,
}

impl OpenFlowApp {
    /// A switch with the given tables pre-installed.
    pub fn new(switch: OpenFlowSwitch) -> OpenFlowApp {
        OpenFlowApp {
            switch,
            gpu: Vec::new(),
            stage: ColumnStage::new(OPENFLOW_COLUMNS),
            malformed: 0,
        }
    }

    fn exact_probe_cycles(&self) -> u64 {
        // Blend cached and missing probes by the table's LLC overflow.
        let bytes = self.switch.exact.len() as u64 * EXACT_ENTRY_BYTES;
        let miss_frac = ((bytes as f64 / LLC_BYTES as f64) - 1.0).clamp(0.0, 1.0);
        EXACT_PROBE_CYCLES + (miss_frac * TABLE_MISS_NS as f64 * CYCLES_PER_NS) as u64
    }

    fn apply(p: &mut Packet, action: Action) {
        match action {
            Action::Output(port) => p.out_port = Some(PortId(port)),
            Action::Drop | Action::Controller => p.out_port = None,
        }
    }
}

impl App for OpenFlowApp {
    fn name(&self) -> &str {
        "openflow"
    }

    fn set_staging(&mut self, mode: Staging) {
        self.stage.set_mode(mode);
    }

    fn staging_totals(&self) -> Option<(u64, u64, u64)> {
        Some(self.stage.totals())
    }

    fn setup_gpu(&mut self, node: usize, eng: &mut GpuEngine) {
        if self.gpu.len() <= node {
            self.gpu.resize_with(node + 1, || None);
        }
        let image = self.switch.wildcard.to_image();
        let wildcard = eng.dev.mem.alloc(image.len().max(ENTRY_SIZE));
        eng.dev.mem.write(&wildcard, 0, &image);
        let shared_image =
            (image.len() <= crate::kernels::OF_SHARED_LIMIT).then(|| std::sync::Arc::new(image));
        let input = self.stage.alloc_input(eng, MAX_GATHER);
        let output = self.stage.alloc_output(eng, MAX_GATHER);
        self.gpu[node] = Some(NodeGpu {
            wildcard,
            n_wildcard: self.switch.wildcard.len(),
            shared_image,
            input,
            output,
        });
    }

    fn pre_shade(&mut self, pkts: &mut Vec<Packet>) -> PreShadeResult {
        let mut r = PreShadeResult::default();
        // Key extraction (validity check only; the key itself is
        // recomputed where needed — the cycle charge happens once,
        // here).
        pkts.retain(|p| {
            if FlowKey::extract(p.in_port.0, &p.data).is_ok() {
                true
            } else {
                r.dropped += 1;
                false
            }
        });
        r.cycles = KEY_EXTRACT_CYCLES * (pkts.len() as u64 + r.dropped);
        r
    }

    fn process_cpu(&mut self, pkts: &mut Vec<Packet>) -> u64 {
        let mut cycles = 0;
        let probe = self.exact_probe_cycles();
        for p in pkts.iter_mut() {
            let parsed = FlowKey::extract(p.in_port.0, &p.data).ok();
            let Some(key) = super::revalidate(&mut self.malformed, parsed) else {
                p.out_port = None;
                continue;
            };
            let r = self.switch.lookup(&key, p.len() as u64);
            cycles += HASH_CYCLES + probe + WILDCARD_ENTRY_CYCLES * r.wildcard_scanned as u64;
            Self::apply(p, r.action);
        }
        pkts.retain(|p| p.out_port.is_some());
        cycles
    }

    fn shade(
        &mut self,
        node: usize,
        eng: &mut GpuEngine,
        ioh: &mut Ioh,
        ready: Time,
        pkts: &mut [Packet],
    ) -> Time {
        let n = pkts.len().min(MAX_GATHER);
        let g = self.gpu[node].as_ref().expect("setup_gpu ran");
        let (wildcard, n_wildcard, input, output) = (g.wildcard, g.n_wildcard, g.input, g.output);
        let shared_image = g.shared_image.clone();
        // Gather the flow-key column into the stage's reused buffer.
        let staged = self.stage.begin();
        staged.resize(n * 32, 0);
        for (i, p) in pkts[..n].iter().enumerate() {
            // A malformed frame stages an all-zero key (the result is
            // discarded below); counted once, here.
            let parsed = FlowKey::extract(p.in_port.0, &p.data).ok();
            if let Some(key) = super::revalidate(&mut self.malformed, parsed) {
                staged[i * 32..i * 32 + 31].copy_from_slice(&key.to_bytes());
            }
        }
        let h2d = self.stage.upload(eng, ioh, ready, &input, &pkts[..n]);
        let kernel = OpenFlowKernel {
            wildcard,
            n_wildcard,
            shared_image,
            input,
            slots: self.stage.slots(),
            output,
            n: n as u32,
        };
        let (kdone, _) = eng.launch(h2d, &kernel, n as u32);
        let (done, _) = self.stage.download(eng, ioh, ready, kdone, &output, n);
        let out = self.stage.take_out();

        // Result application: exact-match resolution with the
        // GPU-computed hash; wildcard action as fallback (functional
        // part of post-shading).
        for (i, p) in pkts[..n].iter_mut().enumerate() {
            let o = i * 8;
            let hash = u32::from_le_bytes(out[o..o + 4].try_into().expect("fixed"));
            let wild_action = u16::from_le_bytes([out[o + 4], out[o + 5]]);
            let Ok(key) = FlowKey::extract(p.in_port.0, &p.data) else {
                p.out_port = None;
                continue;
            };
            let action = match self
                .switch
                .exact
                .lookup_with_hash(hash, &key, p.len() as u64)
            {
                Some(a) => a,
                None if wild_action != OF_NO_MATCH => Action::decode(wild_action),
                None => {
                    self.switch.misses += 1;
                    Action::Controller
                }
            };
            Self::apply(p, action);
        }
        self.stage.give_out(out);
        done
    }

    fn post_shade_cycles(&self, n: usize) -> u64 {
        // Exact-table resolution runs on the worker after the GPU
        // returns hashes.
        (self.exact_probe_cycles() + 30) * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_hw::pcie::PcieModel;
    use ps_hw::spec::{IohSpec, PcieSpec};
    use ps_net::ethernet::MacAddr;
    use ps_net::PacketBuilder;
    use ps_openflow::wildcard::wc;
    use ps_openflow::WildcardEntry;
    use std::net::Ipv4Addr;

    fn packet(dst: Ipv4Addr, dport: u16, in_port: u16) -> Packet {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(9, 9, 9, 9),
            dst,
            4242,
            dport,
            64,
        );
        Packet::new(0, f, PortId(in_port), 0)
    }

    fn switch() -> OpenFlowSwitch {
        let mut sw = OpenFlowSwitch::new();
        // Exact entry for one specific flow.
        let key = FlowKey::extract(0, &packet(Ipv4Addr::new(1, 2, 3, 4), 80, 0).data).unwrap();
        sw.add_exact(key, Action::Output(5));
        // Wildcard: anything to 10/8 -> port 2.
        sw.add_wildcard(WildcardEntry {
            fields: wc::NW_DST,
            priority: 10,
            key: FlowKey {
                nw_dst: 0x0A000000,
                ..FlowKey::default()
            },
            nw_src_mask: 0,
            nw_dst_mask: 0xFF000000,
            action: Action::Output(2),
        });
        sw
    }

    #[test]
    fn cpu_path_exact_beats_wildcard() {
        let mut app = OpenFlowApp::new(switch());
        let mut pkts = vec![
            packet(Ipv4Addr::new(1, 2, 3, 4), 80, 0),  // exact -> 5
            packet(Ipv4Addr::new(10, 9, 9, 9), 81, 1), // wildcard -> 2
            packet(Ipv4Addr::new(99, 9, 9, 9), 81, 1), // miss -> controller
        ];
        app.pre_shade(&mut pkts);
        app.process_cpu(&mut pkts);
        let ports: Vec<_> = pkts.iter().map(|p| p.out_port).collect();
        assert_eq!(ports, vec![Some(PortId(5)), Some(PortId(2))]);
        assert_eq!(app.switch.misses, 1);
    }

    #[test]
    fn gpu_path_agrees_with_cpu_path() {
        let mut cpu_app = OpenFlowApp::new(switch());
        let mut gpu_app = OpenFlowApp::new(switch());
        let dev = ps_gpu::GpuDevice::gtx480_with_mem(32 << 20);
        let mut eng = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        let mut ioh = Ioh::new(IohSpec::intel_5520_dual());
        gpu_app.setup_gpu(0, &mut eng);

        let mk = || {
            vec![
                packet(Ipv4Addr::new(1, 2, 3, 4), 80, 0),
                packet(Ipv4Addr::new(10, 9, 9, 9), 81, 1),
                packet(Ipv4Addr::new(99, 9, 9, 9), 81, 1),
                packet(Ipv4Addr::new(10, 0, 0, 1), 53, 2),
            ]
        };
        let mut a = mk();
        let mut b = mk();
        cpu_app.pre_shade(&mut a);
        cpu_app.process_cpu(&mut a);
        gpu_app.pre_shade(&mut b);
        let done = gpu_app.shade(0, &mut eng, &mut ioh, 0, &mut b);
        assert!(done > 0);
        b.retain(|p| p.out_port.is_some());
        let cpu_ports: Vec<_> = a.iter().map(|p| (p.id, p.out_port)).collect();
        let gpu_ports: Vec<_> = b.iter().map(|p| (p.id, p.out_port)).collect();
        assert_eq!(cpu_ports, gpu_ports);
        assert_eq!(cpu_app.switch.misses, gpu_app.switch.misses);
    }

    #[test]
    fn flow_counters_update_on_either_path() {
        let mut app = OpenFlowApp::new(switch());
        let key = FlowKey::extract(0, &packet(Ipv4Addr::new(1, 2, 3, 4), 80, 0).data).unwrap();
        let mut pkts = vec![packet(Ipv4Addr::new(1, 2, 3, 4), 80, 0)];
        app.pre_shade(&mut pkts);
        app.process_cpu(&mut pkts);
        assert_eq!(app.switch.exact.stats(&key).unwrap().packets, 1);
    }

    #[test]
    fn big_exact_table_costs_more_per_probe() {
        let mut sw = OpenFlowSwitch::new();
        for i in 0..300_000u32 {
            let key = FlowKey {
                nw_src: i,
                ..FlowKey::default()
            };
            sw.add_exact(key, Action::Drop);
        }
        let big = OpenFlowApp::new(sw);
        let small = OpenFlowApp::new(switch());
        assert!(big.exact_probe_cycles() > small.exact_probe_cycles());
    }
}
