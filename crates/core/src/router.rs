//! The event-driven router: workers, masters, NICs, IOHs and GPUs
//! composed into one deterministic simulation (Figures 7 and 9).

use std::collections::VecDeque;

use ps_fault::{FaultPlan, FaultStats, NicFault, ShadeFault};
use ps_gpu::{GpuDevice, GpuEngine};
use ps_hw::cpu::CpuModel;
use ps_hw::ioh::{Direction, Ioh};
use ps_hw::numa::Placement;
use ps_hw::pcie::PcieModel;
use ps_io::cost::CostModel;
use ps_io::{dma_bytes, Packet};
use ps_net::ethernet::{EtherType, EthernetFrame};
use ps_net::ipv4::Ipv4Packet;
use ps_net::ipv6::Ipv6Packet;
use ps_net::tcp::TcpSegment;
use ps_net::udp::UdpDatagram;
use ps_nic::port::{Port, PortId};
use ps_nic::ring::Ring;
use ps_nic::rss::{toeplitz_hash, MSFT_KEY};
use ps_pktgen::{Generator, Sink, TrafficSpec};
use ps_sim::stats::{Histogram, PacketCounter, ETHERNET_OVERHEAD_BYTES};
use ps_sim::time::Time;
use ps_sim::{Model, Scheduler, Simulation, MICROS};

use crate::app::App;
use crate::chunk::Chunk;
use crate::config::{Mode, RouterConfig};

/// Interrupt delivery latency once fired.
const INT_LATENCY: Time = 2 * MICROS;
/// Master orchestration cycles per gathered chunk (it "transfers the
/// input data ... without touching the data itself", §5.3).
const MASTER_CYCLES_PER_CHUNK: u64 = 300;
/// RX DMA admission horizon: when the IOH's device->host backlog
/// exceeds this, the NIC has run out of posted descriptors and drops
/// in its internal FIFO *before* spending any DMA bandwidth.
const RX_ADMIT_BACKLOG: Time = 20 * MICROS;
/// Upper bound on the recycled frame-buffer / event-box pools; keeps
/// a pathological burst from pinning memory forever.
const POOL_CAP: usize = 8192;
/// Driver timeout before the host notices a dead or escalated GPU
/// batch and starts the CPU fallback.
const FAULT_DETECT_NS: Time = 10 * MICROS;

/// Router events.
#[derive(Debug)]
pub enum Ev {
    /// Generator emits its next packet.
    Gen,
    /// A packet's RX DMA completed; it lands in a worker's queue.
    RxReady { worker: usize, pkt: Box<Packet> },
    /// A worker thread continues its loop.
    WorkerLoop { worker: usize },
    /// A master thread checks its input queue.
    MasterLoop { node: usize },
    /// A transmitted frame finished serializing onto the wire.
    TxDone { pkt: Box<Packet> },
}

struct WorkerState {
    node: usize,
    busy_until: Time,
    /// Armed RX interrupt (worker parked).
    idle: bool,
    /// Earliest already-scheduled wake, to dedupe events.
    next_wake: Option<Time>,
    /// Interrupt moderation horizon.
    last_int: Time,
    /// Chunks in flight at the master.
    outstanding: usize,
    /// Shaded chunks ready for post-processing: `(ready_at, chunk)`.
    done_queue: VecDeque<(Time, Chunk)>,
}

struct MasterState {
    input: VecDeque<Chunk>,
    next_wake: Option<Time>,
    /// The master thread blocks in the shading step until this
    /// instant (with streams it only blocks for the copy submission).
    busy_until: Time,
}

/// Aggregated run statistics.
#[derive(Debug)]
pub struct RouterReport {
    /// Virtual-time window simulated.
    pub window: Time,
    /// Packets offered by the generator.
    pub offered: PacketCounter,
    /// Packets delivered back to the sink.
    pub delivered: PacketCounter,
    /// Round-trip latency (ns).
    pub latency: Histogram,
    /// RX-ring tail drops.
    pub rx_drops: u64,
    /// Packets dropped by the application (no route, TTL, checksum).
    pub app_drops: u64,
    /// Packets diverted to the host stack.
    pub slow_path: u64,
    /// GPU kernels launched (both devices).
    pub gpu_kernels: u64,
    /// Mean packets per shading launch.
    pub mean_shade_batch: f64,
    /// Mean packets per RX fetch.
    pub mean_rx_batch: f64,
    /// Bytes served per IOH, device->host (Gbit over the window).
    pub ioh_d2h_gbit: Vec<f64>,
    /// Bytes served per IOH, host->device.
    pub ioh_h2d_gbit: Vec<f64>,
    /// NIC-FIFO drops (IOH admission) vs RX-ring tail drops.
    pub drop_split: (u64, u64),
    /// Fault-injection ledger (all zero when no plan was armed).
    pub faults: FaultStats,
}

impl RouterReport {
    /// Delivered throughput in the paper's metric.
    pub fn out_gbps(&self) -> f64 {
        self.delivered
            .gbps_with_overhead(self.window, ETHERNET_OVERHEAD_BYTES)
    }

    /// Offered load in the paper's metric.
    pub fn in_gbps(&self) -> f64 {
        self.offered
            .gbps_with_overhead(self.window, ETHERNET_OVERHEAD_BYTES)
    }

    /// Delivered throughput measured at the *input* frame size — the
    /// paper's IPsec metric ("we take input throughput as a metric
    /// rather than output throughput", §6.2.4), which factors out the
    /// ESP expansion.
    pub fn out_gbps_input_sized(&self, input_frame_len: usize) -> f64 {
        let bits = self.delivered.packets * (ps_net::wire_len(input_frame_len) as u64) * 8;
        ps_sim::time::rate_per_sec(bits, self.window) / 1e9
    }

    /// Delivered fraction.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered.packets == 0 {
            return 1.0;
        }
        self.delivered.packets as f64 / self.offered.packets as f64
    }
}

/// The router model.
pub struct Router<A: App> {
    cfg: RouterConfig,
    app: A,
    gen: Generator,
    /// The measurement sink.
    pub sink: Sink,
    ports: Vec<Port>,
    iohs: Vec<Ioh>,
    gpus: Vec<GpuEngine>,
    cost: CostModel,
    cpu: CpuModel,
    workers: Vec<WorkerState>,
    masters: Vec<MasterState>,
    rings: Vec<Ring<Packet>>,
    stop_at: Time,
    /// Counters only accumulate from this instant (warm-up excluded).
    measure_from: Time,
    // statistics
    offered: PacketCounter,
    /// Drops in the NIC FIFO (descriptor starvation under overload).
    nic_drops: u64,
    app_drops: u64,
    slow_path: u64,
    shade_batches: u64,
    shade_packets: u64,
    rx_batches: u64,
    rx_packets: u64,
    /// Recycled frame buffers: delivered and tail-dropped packets
    /// return their `data` allocation here, and the generator
    /// materializes new frames into them — the steady state allocates
    /// no per-packet buffers.
    free_bufs: Vec<Vec<u8>>,
    /// Recycled event boxes for [`Ev::RxReady`] / [`Ev::TxDone`] —
    /// the `Box` allocations themselves are the pooled resource.
    #[allow(clippy::vec_box)]
    free_boxes: Vec<Box<Packet>>,
    /// Armed fault plan; [`None`] whenever the config's spec is
    /// all-zero, so fault-free runs draw no randomness and emit no
    /// trace events from this layer.
    plan: Option<FaultPlan>,
}

impl<A: App> Router<A> {
    /// Build a router; `stop_at` bounds packet generation.
    pub fn new(cfg: RouterConfig, mut app: A, spec: TrafficSpec, stop_at: Time) -> Router<A> {
        assert_eq!(
            spec.ports, cfg.ports,
            "traffic spec and router must agree on port count"
        );
        let tb = cfg.testbed;
        let ports = (0..cfg.ports)
            .map(|i| Port::new(PortId(i), tb.nic.line_rate_bits))
            .collect();
        let iohs = (0..cfg.nodes)
            .map(|i| {
                let mut ioh = Ioh::new(tb.ioh);
                ioh.set_trace_lane(i as u32);
                ioh
            })
            .collect();
        let mut gpus = Vec::new();
        if cfg.mode == Mode::CpuGpu {
            for node in 0..cfg.nodes {
                let dev = GpuDevice {
                    spec: tb.gpu,
                    mem: ps_gpu::DeviceMemory::new(cfg.gpu_mem_bytes),
                };
                let mut eng = GpuEngine::new(dev, PcieModel::new(tb.pcie));
                eng.concurrent_copy = cfg.concurrent_copy;
                eng.trace_lane = node as u32;
                app.setup_gpu(node, &mut eng);
                gpus.push(eng);
            }
        }
        let workers = (0..cfg.total_workers())
            .map(|w| WorkerState {
                node: w / cfg.workers_per_node,
                busy_until: 0,
                idle: true,
                next_wake: None,
                last_int: 0,
                outstanding: 0,
                done_queue: VecDeque::new(),
            })
            .collect();
        let masters = (0..cfg.nodes)
            .map(|_| MasterState {
                input: VecDeque::new(),
                next_wake: None,
                busy_until: 0,
            })
            .collect();
        let rings = (0..cfg.total_workers())
            .map(|_| Ring::new(cfg.io.ring_entries))
            .collect();
        Router {
            cfg,
            app,
            gen: Generator::new(spec),
            sink: Sink::new(),
            ports,
            iohs,
            gpus,
            cost: CostModel::default(),
            cpu: CpuModel::new(tb.cpu),
            workers,
            masters,
            rings,
            stop_at,
            measure_from: stop_at / 5,
            offered: PacketCounter::default(),
            nic_drops: 0,
            app_drops: 0,
            slow_path: 0,
            shade_batches: 0,
            shade_packets: 0,
            rx_batches: 0,
            rx_packets: 0,
            free_bufs: Vec::new(),
            free_boxes: Vec::new(),
            plan: cfg.faults.enabled().then(|| FaultPlan::new(cfg.faults)),
        }
    }

    /// Return a frame buffer to the recycling pool.
    fn reclaim_buf(&mut self, buf: Vec<u8>) {
        if self.free_bufs.len() < POOL_CAP {
            self.free_bufs.push(buf);
        }
    }

    /// Box `p` for an event, reusing a recycled box when available.
    fn event_box(&mut self, p: Packet) -> Box<Packet> {
        match self.free_boxes.pop() {
            Some(mut b) => {
                *b = p;
                b
            }
            None => Box::new(p),
        }
    }

    /// Take the packet out of an event box and recycle the box.
    fn event_unbox(&mut self, mut b: Box<Packet>) -> Packet {
        let p = std::mem::replace(&mut *b, Packet::new(0, Vec::new(), PortId(0), 0));
        if self.free_boxes.len() < POOL_CAP {
            self.free_boxes.push(b);
        }
        p
    }

    /// Convenience: run a configured router for `duration` and report.
    pub fn run(cfg: RouterConfig, app: A, spec: TrafficSpec, duration: Time) -> RouterReport {
        let router = Router::new(cfg, app, spec, duration);
        let mut sim = Simulation::new(router);
        sim.schedule(0, Ev::Gen);
        // Measure exactly [0, duration]: packets still in flight at
        // the deadline do not count (steady-state occupancy is small
        // relative to any measurement window).
        sim.run_until(duration);
        let window = duration - sim.model.measure_from;
        sim.model.report(window)
    }

    /// Build the report over measurement window `window`.
    pub fn report(&self, window: Time) -> RouterReport {
        RouterReport {
            window,
            offered: self.offered,
            delivered: self.sink.delivered,
            latency: self.sink.latency.clone(),
            rx_drops: self.nic_drops + self.rings.iter().map(|r| r.drops).sum::<u64>(),
            app_drops: self.app_drops,
            slow_path: self.slow_path,
            gpu_kernels: self.gpus.iter().map(|g| g.kernels_launched).sum(),
            mean_shade_batch: if self.shade_batches == 0 {
                0.0
            } else {
                self.shade_packets as f64 / self.shade_batches as f64
            },
            mean_rx_batch: if self.rx_batches == 0 {
                0.0
            } else {
                self.rx_packets as f64 / self.rx_batches as f64
            },
            ioh_d2h_gbit: self
                .iohs
                .iter()
                .map(|i| i.d2h_bytes() as f64 * 8.0 / window as f64)
                .collect(),
            ioh_h2d_gbit: self
                .iohs
                .iter()
                .map(|i| i.h2d_bytes() as f64 * 8.0 / window as f64)
                .collect(),
            drop_split: (
                self.nic_drops,
                self.rings.iter().map(|r| r.drops).sum::<u64>(),
            ),
            faults: match &self.plan {
                Some(p) => p.stats.clone(),
                None => FaultStats::default(),
            },
        }
    }

    /// Access the application (post-run inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    fn node_of_port(&self, port: PortId) -> usize {
        (port.0 / self.cfg.ports_per_node()) as usize
    }

    /// RSS: pick the worker for a flow hash (§4.4 flow affinity; §4.5
    /// same-node restriction under NUMA-aware placement).
    fn worker_for_hash(&self, hash: u32, in_port: PortId) -> usize {
        match self.cfg.io.placement {
            Placement::NumaAware => {
                let w = self.cfg.workers_per_node;
                self.node_of_port(in_port) * w + hash as usize % w
            }
            Placement::NumaBlind => hash as usize % self.cfg.total_workers(),
        }
    }

    fn cycles_ns(&self, cycles: u64) -> Time {
        self.cpu.cycles_to_ns(cycles)
    }

    /// Trace lane for node `node`'s master gather work: masters get
    /// the lanes just above the workers so every thread in the machine
    /// has its own row in the timeline.
    fn gather_lane(&self, node: usize) -> u32 {
        (self.cfg.total_workers() + node) as u32
    }

    /// Trace lane for node `node`'s shading intervals. Kept separate
    /// from the gather lane because in stream mode the next gather
    /// overlaps the previous shade; per-lane stage spans stay disjoint
    /// so busy-time accounting can sum them.
    fn shade_lane(&self, node: usize) -> u32 {
        (self.cfg.total_workers() + self.cfg.nodes + node) as u32
    }

    fn wake_worker(&mut self, sched: &mut Scheduler<Ev>, w: usize, t: Time) {
        let t = t.max(sched.now());
        if let Some(pending) = self.workers[w].next_wake {
            if pending <= t {
                return;
            }
        }
        self.workers[w].next_wake = Some(t);
        sched.at(t, Ev::WorkerLoop { worker: w });
    }

    fn wake_master(&mut self, sched: &mut Scheduler<Ev>, node: usize, t: Time) {
        let t = t.max(sched.now());
        if let Some(pending) = self.masters[node].next_wake {
            if pending <= t {
                return;
            }
        }
        self.masters[node].next_wake = Some(t);
        sched.at(t, Ev::MasterLoop { node });
    }

    fn on_gen(&mut self, sched: &mut Scheduler<Ev>) {
        let (meta, node, wire_done) = loop {
            let meta = self.gen.next_meta();
            debug_assert!(meta.t >= sched.now());
            if meta.t >= self.measure_from {
                self.offered.add(meta.len as u64);
            }

            // Wire serialization into the NIC, then RX DMA through the
            // node's IOH into the huge packet buffer. The frame itself
            // is built only if the NIC admits it.
            let node = self.node_of_port(meta.port);
            let wire_done = self.ports[meta.port.0 as usize].rx_arrival(meta.t, meta.len);
            // Injected NIC faults (link-flap windows, starvation
            // bursts) kill the frame at the MAC before the admission
            // check; they consume RX wire time like any arrival but no
            // fabric bandwidth.
            let faulted = match self.plan.as_mut() {
                Some(plan) => {
                    let port = &mut self.ports[meta.port.0 as usize];
                    if !port.link_up(wire_done) {
                        plan.note_flap_drop(meta.port.0);
                        port.fault_drops += 1;
                        true
                    } else {
                        match plan.nic_fault(meta.port.0, wire_done) {
                            Some(NicFault::LinkFlap { down_ns }) => {
                                port.set_link_down(wire_done + down_ns);
                                port.fault_drops += 1;
                                true
                            }
                            Some(NicFault::Starve) => {
                                port.fault_drops += 1;
                                true
                            }
                            None => false,
                        }
                    }
                }
                None => false,
            };
            // Descriptor starvation: drop in the NIC before the DMA if
            // the IOH's inbound backlog is past the posted-descriptor
            // horizon (dropped frames must not consume fabric
            // bandwidth).
            if !faulted
                && self.iohs[node].backlog(wire_done, Direction::DeviceToHost) <= RX_ADMIT_BACKLOG
            {
                break (meta, node, wire_done);
            }
            self.nic_drops += 1;
            let next = self.gen_peek_next();
            if next >= self.stop_at {
                return;
            }
            // The drop verdict reads only generator, RX-wire, and
            // inbound-IOH state, all mutated exclusively here — so
            // while the next arrival strictly precedes every other
            // pending event (which could advance the IOH's shared
            // capacity horizon), consecutive drops drain in this loop
            // instead of paying one scheduler round-trip each.
            if sched.peek_time().is_none_or(|t| next < t) {
                continue;
            }
            sched.at(next, Ev::Gen);
            return;
        };
        let len = meta.len;
        let mut dma_done = self.iohs[node].dma(wire_done, Direction::DeviceToHost, dma_bytes(len));
        let mut crossed = false;
        if self.cfg.io.placement == Placement::NumaBlind && self.cfg.nodes > 1 {
            // Blind placement: ~3/4 of packets touch a remote
            // structure (blind RSS x blind buffer allocation, see
            // `Placement::remote_fraction`), so their DMA crosses the
            // other IOH too.
            if meta.id % 4 != 0 {
                let other = (node + 1) % self.cfg.nodes;
                dma_done = dma_done.max(self.iohs[other].dma(
                    wire_done,
                    Direction::DeviceToHost,
                    dma_bytes(len),
                ));
                crossed = true;
            }
        }
        // The NIC hashes the tuple it is already holding; parsing it
        // back out of the frame bytes would give the same value
        // (pinned by `meta_hash_matches_frame_parse`).
        let worker = self.worker_for_hash(meta.rss_hash(), meta.port);
        let buf = self.free_bufs.pop().unwrap_or_default();
        let mut p = self.gen.materialize_into(&meta, buf);
        p.arrival = dma_done;
        // On-the-wire corruption: the frame was admitted and DMA'd,
        // but its bytes arrive damaged. The flag lets every later
        // drop or delivery settle against the fault ledger.
        if let Some(plan) = self.plan.as_mut() {
            if plan
                .corrupt_frame(meta.port.0, wire_done, &mut p.data)
                .is_some()
            {
                p.corrupted = true;
            }
        }
        let pkt = self.event_box(p);
        let ev = Ev::RxReady { worker, pkt };
        if crossed {
            // A node's crossing packets finish at the max of *two*
            // IOH horizons while its local-only packets track one, so
            // the interleaved per-node stream is not monotone — those
            // completions take the heap.
            sched.at(dma_done, ev);
        } else {
            // Local-only RX completions come out of the node IOH's
            // bandwidth server in nondecreasing order: a FIFO lane
            // spares the heap.
            sched.at_fifo(node, dma_done, ev);
        }

        // Next arrival (open loop) until the generation window ends.
        let next = self.gen_peek_next();
        if next < self.stop_at {
            sched.at(next, Ev::Gen);
        }
    }

    fn gen_peek_next(&self) -> Time {
        // Generator paces deterministically; its next emission time is
        // exposed by running it lazily: we schedule Gen at the time the
        // *next* packet will carry. Peek by cloning cost would be
        // heavy; instead the generator's pacing makes next_time public
        // through spec: we simply reuse its internal pacing by asking
        // for the time of the next packet on the next Gen event.
        self.gen.next_time()
    }

    fn on_rx_ready(&mut self, sched: &mut Scheduler<Ev>, worker: usize, pkt: Box<Packet>) {
        let now = sched.now();
        let pkt = self.event_unbox(pkt);
        if let Err(p) = self.rings[worker].push(pkt) {
            if p.corrupted {
                if let Some(plan) = self.plan.as_mut() {
                    plan.note_corrupt_dropped(1);
                }
            }
            self.reclaim_buf(p.data);
            return; // tail drop, counted by the ring
        }
        ps_io::trace::trace_ring_depth(worker as u32, now, self.rings[worker].len() as u64);
        if self.workers[worker].idle {
            // Fire the (moderated) RX interrupt.
            let w = &mut self.workers[worker];
            w.idle = false;
            let moderation = self.cfg.testbed.nic.interrupt_moderation_ns;
            let t = (now + INT_LATENCY).max(w.last_int + moderation);
            w.last_int = t;
            self.wake_worker(sched, worker, t);
        }
    }

    fn on_worker_loop(&mut self, sched: &mut Scheduler<Ev>, w: usize) {
        let now = sched.now();
        self.workers[w].next_wake = None;
        if self.workers[w].busy_until > now {
            let t = self.workers[w].busy_until;
            self.wake_worker(sched, w, t);
            return;
        }

        // 1. Completed shading output? Post-shade + transmit.
        if let Some(&(ready, _)) = self.workers[w].done_queue.front() {
            if ready <= now {
                let (_, chunk) = self.workers[w]
                    .done_queue
                    .pop_front()
                    .expect("front exists");
                self.workers[w].outstanding -= 1;
                self.finish_chunk(sched, w, chunk, true);
                return;
            }
        }

        // 2. Fetch a new chunk if the pipeline has room.
        let can_fetch = match self.cfg.mode {
            Mode::CpuOnly => true,
            Mode::CpuGpu => self.workers[w].outstanding < self.cfg.pipeline_depth,
        };
        if can_fetch && !self.rings[w].is_empty() {
            let batch = self.rings[w].pop_batch(self.cfg.io.batch_cap);
            ps_io::trace::trace_ring_depth(w as u32, now, self.rings[w].len() as u64);
            self.rx_batches += 1;
            self.rx_packets += batch.len() as u64;
            let n = batch.len() as u64;
            let bytes: u64 = batch.iter().map(|p| p.len() as u64).sum();
            let rx_cycles = self.cost.rx_batch_cycles(n, bytes, self.cfg.io.placement);
            let mut pkts = batch;
            let corrupt_before = match &self.plan {
                Some(_) => pkts.iter().filter(|p| p.corrupted).count() as u64,
                None => 0,
            };
            let pre = self.app.pre_shade(&mut pkts);
            if let Some(plan) = self.plan.as_mut() {
                // Corrupted frames the pre-shader rejected (malformed,
                // bad checksum) or diverted off the fast path settle
                // as counted drops.
                let after = pkts.iter().filter(|p| p.corrupted).count() as u64;
                plan.note_corrupt_dropped(corrupt_before - after);
            }
            self.app_drops += pre.dropped;
            self.slow_path += pre.slow_path;
            let t1 = now + self.cycles_ns(rx_cycles + pre.cycles);
            self.workers[w].busy_until = t1;
            // One span for the fused RX-fetch + pre-shade interval:
            // the model charges them as a single cycle budget, and
            // splitting the ns conversion would round differently.
            ps_io::trace::trace_rx_batch(w as u32, now, t1, n, bytes);
            ps_trace::complete(
                ps_trace::Category::Stage,
                "pre_shade",
                w as u32,
                now,
                t1,
                || {
                    vec![
                        ("pkts", n),
                        ("bytes", bytes),
                        ("dropped", pre.dropped),
                        ("slow_path", pre.slow_path),
                    ]
                },
            );

            if pkts.is_empty() {
                self.wake_worker(sched, w, t1);
                return;
            }

            let use_cpu = match self.cfg.mode {
                Mode::CpuOnly => true,
                Mode::CpuGpu => {
                    self.cfg.opportunistic && pkts.len() < self.cfg.opportunistic_threshold
                }
            };
            if use_cpu {
                let corrupt_before = match &self.plan {
                    Some(_) => pkts.iter().filter(|p| p.corrupted).count() as u64,
                    None => 0,
                };
                let cycles = self.app.process_cpu(&mut pkts);
                if let Some(plan) = self.plan.as_mut() {
                    let after = pkts.iter().filter(|p| p.corrupted).count() as u64;
                    plan.note_corrupt_dropped(corrupt_before - after);
                }
                let t2 = t1 + self.cycles_ns(cycles);
                self.workers[w].busy_until = t2;
                let n = pkts.len() as u64;
                ps_trace::complete(
                    ps_trace::Category::Stage,
                    "cpu_process",
                    w as u32,
                    t1,
                    t2,
                    || vec![("pkts", n)],
                );
                let chunk = Chunk::new(w, pkts, now);
                // Transmit as soon as processing ends.
                self.workers[w].done_queue.push_back((t2, chunk));
                self.workers[w].outstanding += 1;
                self.wake_worker(sched, w, t2);
            } else {
                let node = self.workers[w].node;
                let chunk = Chunk::new(w, pkts, now);
                self.workers[w].outstanding += 1;
                self.masters[node].input.push_back(chunk);
                self.wake_master(sched, node, t1);
                self.wake_worker(sched, w, t1);
            }
            return;
        }

        // 3. Output pending but not ready: sleep until it is.
        if let Some(&(ready, _)) = self.workers[w].done_queue.front() {
            self.wake_worker(sched, w, ready);
            return;
        }

        // 4. Nothing to do: arm the interrupt (§5.2).
        if self.rings[w].is_empty() {
            self.workers[w].idle = true;
        } else {
            // Pipeline full; the master's scatter will wake us.
        }
    }

    /// Post-shade + TX a finished chunk on worker `w`.
    fn finish_chunk(&mut self, sched: &mut Scheduler<Ev>, w: usize, chunk: Chunk, charge: bool) {
        let now = sched.now();
        let mut pkts = chunk.packets;
        // Application may have cleared out_port for drops.
        let before = pkts.len();
        if self.plan.is_some() {
            let dead = pkts
                .iter()
                .filter(|p| p.corrupted && p.out_port.is_none())
                .count() as u64;
            if let Some(plan) = self.plan.as_mut() {
                plan.note_corrupt_dropped(dead);
            }
        }
        pkts.retain(|p| p.out_port.is_some());
        self.app_drops += (before - pkts.len()) as u64;

        let bytes: u64 = pkts.iter().map(|p| p.len() as u64).sum();
        let cycles = if charge {
            self.app.post_shade_cycles(pkts.len())
                + self
                    .cost
                    .tx_batch_cycles(pkts.len() as u64, bytes, self.cfg.io.placement)
        } else {
            0
        };
        let t2 = now + self.cycles_ns(cycles);
        self.workers[w].busy_until = t2;
        if charge {
            let n = pkts.len() as u64;
            ps_io::trace::trace_tx_batch(w as u32, now, t2, n, bytes);
            ps_trace::complete(
                ps_trace::Category::Stage,
                "post_shade",
                w as u32,
                now,
                t2,
                || vec![("pkts", n), ("bytes", bytes)],
            );
        }

        for p in pkts {
            let out = p.out_port.expect("retained");
            let node = self.node_of_port(out);
            // TX DMA: the NIC reads the frame from host memory.
            let mut dma_done = self.iohs[node].dma(t2, Direction::HostToDevice, dma_bytes(p.len()));
            if self.cfg.io.placement == Placement::NumaBlind && self.cfg.nodes > 1 && p.id % 4 != 0
            {
                // Blind buffers: the NIC's read crosses the remote IOH.
                let other = (node + 1) % self.cfg.nodes;
                dma_done = dma_done.max(self.iohs[other].dma(
                    t2,
                    Direction::HostToDevice,
                    dma_bytes(p.len()),
                ));
            }
            let wire_done = self.ports[out.0 as usize].tx_frame(dma_done, p.len());
            let pkt = self.event_box(p);
            // Per-port TX completions serialize onto the wire in
            // nondecreasing order; lanes sit above the RX-node lanes.
            sched.at_fifo(
                self.cfg.nodes + out.0 as usize,
                wire_done,
                Ev::TxDone { pkt },
            );
        }
        self.wake_worker(sched, w, t2);
    }

    fn on_master_loop(&mut self, sched: &mut Scheduler<Ev>, node: usize) {
        let now = sched.now();
        self.masters[node].next_wake = None;
        if self.masters[node].busy_until > now {
            let t = self.masters[node].busy_until;
            self.wake_master(sched, node, t);
            return;
        }
        if self.masters[node].input.is_empty() {
            return;
        }
        // Gather pending chunks (Figure 10(b)); without gather, take
        // exactly one.
        let take = if self.cfg.gather {
            self.cfg
                .max_gather_chunks
                .min(self.masters[node].input.len())
        } else {
            1
        };
        let chunks: Vec<Chunk> = self.masters[node].input.drain(..take).collect();
        let mut all: Vec<Packet> = Vec::with_capacity(chunks.iter().map(Chunk::len).sum());
        let mut splits = Vec::with_capacity(take);
        for c in &chunks {
            splits.push((c.worker, c.len(), c.fetched_at));
        }
        for c in chunks {
            all.extend(c.packets);
        }

        let ready = now + self.cycles_ns(MASTER_CYCLES_PER_CHUNK * take as u64);
        self.shade_batches += 1;
        self.shade_packets += all.len() as u64;
        let n = all.len() as u64;
        ps_trace::complete(
            ps_trace::Category::Stage,
            "gather",
            self.gather_lane(node),
            now,
            ready,
            || vec![("chunks", take as u64), ("pkts", n)],
        );
        // Injected shading faults: a PCIe stall pushes the batch (and
        // the node's fabric) back by its retry backoff; an abort or an
        // exhausted retry budget sends the whole batch down the CPU
        // fallback; a straggler stretches the launch.
        let mut start = ready;
        let mut fallback = false;
        let mut straggle_pct = 0u32;
        if let Some(plan) = self.plan.as_mut() {
            match plan.shade_fault(node, ready) {
                ShadeFault::None => {}
                ShadeFault::PcieStall { stall_ns, escalate } => {
                    self.iohs[node].inject_stall(ready, Direction::HostToDevice, stall_ns);
                    start = ready + stall_ns;
                    fallback = escalate;
                }
                ShadeFault::GpuAbort => fallback = true,
                ShadeFault::Straggle { extra_pct } => straggle_pct = extra_pct,
            }
        }

        if fallback {
            // The GPU batch is lost: after the driver timeout the
            // master re-runs the kernel functionally on the host at
            // the calibrated CPU cost. `process_cpu` may *remove*
            // packets the shader would only have unmarked, so the
            // scatter walks survivors against each split's original
            // id range (order is preserved).
            let ids: Vec<u64> = all.iter().map(|p| p.id).collect();
            let corrupt_before = all.iter().filter(|p| p.corrupted).count() as u64;
            let cycles = self.app.process_cpu(&mut all);
            let done = start + FAULT_DETECT_NS + self.cycles_ns(cycles);
            if let Some(plan) = self.plan.as_mut() {
                plan.note_cpu_fallback(ids.len() as u64);
                let after = all.iter().filter(|p| p.corrupted).count() as u64;
                plan.note_corrupt_dropped(corrupt_before - after);
            }
            self.app_drops += (ids.len() - all.len()) as u64;
            ps_trace::complete(
                ps_trace::Category::Stage,
                "cpu_fallback",
                self.shade_lane(node),
                start,
                done,
                || vec![("pkts", n)],
            );
            let mut out: Vec<Vec<Packet>> = splits
                .iter()
                .map(|&(_, len, _)| Vec::with_capacity(len))
                .collect();
            let mut j = 0usize; // cursor into the original id sequence
            let mut s = 0usize; // current split
            let mut bound = splits[0].1;
            for p in all {
                while ids[j] != p.id {
                    j += 1;
                }
                while j >= bound {
                    s += 1;
                    bound += splits[s].1;
                }
                out[s].push(p);
                j += 1;
            }
            for ((worker, _, fetched_at), pkts) in splits.into_iter().zip(out) {
                let chunk = Chunk::new(worker, pkts, fetched_at);
                self.workers[worker].done_queue.push_back((done, chunk));
                self.wake_worker(sched, worker, done);
            }
            // The master itself did the fallback work: it blocks
            // until the batch is done regardless of stream mode.
            self.masters[node].busy_until = done;
        } else {
            let done = self.app.shade(
                node,
                &mut self.gpus[node],
                &mut self.iohs[node],
                start,
                &mut all,
            );
            let done = if straggle_pct > 0 {
                let extra = (done - start) * u64::from(straggle_pct) / 100;
                // The straggling warp occupies the engines past the
                // modeled completion, queueing the next launch too.
                self.gpus[node].delay_engines(extra);
                if let Some(plan) = self.plan.as_mut() {
                    plan.note_straggle_ns(extra);
                }
                done + extra
            } else {
                done
            };
            ps_trace::complete(
                ps_trace::Category::Stage,
                "shade",
                self.shade_lane(node),
                start,
                done,
                || vec![("pkts", n)],
            );

            // Scatter results back to per-worker output queues, moving
            // the packets out of the gathered batch — no per-packet
            // clones of the frame data.
            let mut rest = all.into_iter();
            for (worker, len, fetched_at) in splits {
                let pkts: Vec<Packet> = rest.by_ref().take(len).collect();
                let chunk = Chunk::new(worker, pkts, fetched_at);
                self.workers[worker].done_queue.push_back((done, chunk));
                self.wake_worker(sched, worker, done);
            }

            // With streams the master pipelines the next gather behind
            // this one as soon as this gather's uploads are queued;
            // without streams it blocks until the results are back.
            self.masters[node].busy_until = if self.cfg.concurrent_copy {
                start.max(self.gpus[node].next_copy_slot())
            } else {
                done
            };
        }
        if !self.masters[node].input.is_empty() {
            let t = self.masters[node].busy_until;
            self.wake_master(sched, node, t);
        }
    }
}

impl<A: App> Model for Router<A> {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        match ev {
            Ev::Gen => self.on_gen(sched),
            Ev::RxReady { worker, pkt } => self.on_rx_ready(sched, worker, pkt),
            Ev::WorkerLoop { worker } => self.on_worker_loop(sched, worker),
            Ev::MasterLoop { node } => self.on_master_loop(sched, node),
            Ev::TxDone { pkt } => {
                let now = sched.now();
                if now >= self.measure_from {
                    self.sink.deliver(now, &pkt);
                }
                let p = self.event_unbox(pkt);
                if p.corrupted {
                    if let Some(plan) = self.plan.as_mut() {
                        plan.note_corrupt_delivered();
                    }
                }
                self.reclaim_buf(p.data);
            }
        }
    }
}

/// RSS hash over the frame's 5-tuple (Toeplitz, §4.4); non-IP frames
/// hash to 0 (queue 0), like the 82599.
pub fn rss_hash(frame: &[u8]) -> u32 {
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return 0;
    };
    match eth.ethertype() {
        EtherType::Ipv4 => {
            let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
                return 0;
            };
            let (sport, dport) = l4_ports(ip.protocol(), ip.payload());
            let mut input = [0u8; 12];
            input[0..4].copy_from_slice(&ip.src().octets());
            input[4..8].copy_from_slice(&ip.dst().octets());
            input[8..10].copy_from_slice(&sport.to_be_bytes());
            input[10..12].copy_from_slice(&dport.to_be_bytes());
            toeplitz_hash(&MSFT_KEY, &input)
        }
        EtherType::Ipv6 => {
            let Ok(ip) = Ipv6Packet::new_checked(eth.payload()) else {
                return 0;
            };
            let (sport, dport) = l4_ports(ip.next_header(), ip.payload());
            let mut input = [0u8; 36];
            input[0..16].copy_from_slice(&ip.src().octets());
            input[16..32].copy_from_slice(&ip.dst().octets());
            input[32..34].copy_from_slice(&sport.to_be_bytes());
            input[34..36].copy_from_slice(&dport.to_be_bytes());
            toeplitz_hash(&MSFT_KEY, &input)
        }
        _ => 0,
    }
}

fn l4_ports(proto: u8, payload: &[u8]) -> (u16, u16) {
    match proto {
        ps_net::ipv4::protocol::UDP => UdpDatagram::new_checked(payload)
            .map(|u| (u.src_port(), u.dst_port()))
            .unwrap_or((0, 0)),
        ps_net::ipv4::protocol::TCP => TcpSegment::new_checked(payload)
            .map(|t| (t.src_port(), t.dst_port()))
            .unwrap_or((0, 0)),
        _ => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{ForwardPattern, MinimalApp};
    use ps_sim::{MILLIS, SECONDS};

    fn spec(gbps: f64, ports: u16) -> TrafficSpec {
        let mut s = TrafficSpec::ipv4_64b(gbps, 42);
        s.ports = ports;
        s
    }

    #[test]
    fn light_load_is_delivered_losslessly() {
        let cfg = RouterConfig::paper_cpu();
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let report = Router::run(cfg, app, spec(4.0, 8), 4 * MILLIS);
        assert!(
            report.delivery_ratio() > 0.999,
            "ratio {}",
            report.delivery_ratio()
        );
        assert_eq!(report.rx_drops, 0);
        let out = report.out_gbps();
        assert!((3.8..4.2).contains(&out), "out {out} Gbps");
    }

    #[test]
    fn forwarding_saturates_near_40_gbps() {
        // Figure 6: minimal forwarding tops out just above 40 Gbps,
        // bound by the dual-IOH fabric.
        let cfg = RouterConfig::paper_cpu();
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let report = Router::run(cfg, app, spec(80.0, 8), 4 * MILLIS);
        let out = report.out_gbps();
        assert!((38.0..46.0).contains(&out), "saturated at {out} Gbps");
        assert!(report.rx_drops > 0, "overload must shed load");
    }

    #[test]
    fn node_crossing_still_forwards_above_40() {
        let cfg = RouterConfig::paper_cpu();
        let app = MinimalApp::new(ForwardPattern::NodeCrossing, 8);
        let report = Router::run(cfg, app, spec(80.0, 8), 4 * MILLIS);
        let out = report.out_gbps();
        assert!(out > 36.0, "node-crossing {out} Gbps");
    }

    #[test]
    fn numa_blind_loses_throughput() {
        let mut blind = RouterConfig::paper_cpu();
        blind.io = ps_io::IoConfig::numa_blind();
        let aware = RouterConfig::paper_cpu();
        let r_blind = Router::run(
            blind,
            MinimalApp::new(ForwardPattern::SameNode, 8),
            spec(80.0, 8),
            4 * MILLIS,
        );
        let r_aware = Router::run(
            aware,
            MinimalApp::new(ForwardPattern::SameNode, 8),
            spec(80.0, 8),
            4 * MILLIS,
        );
        assert!(
            r_blind.out_gbps() < r_aware.out_gbps() * 0.72,
            "blind {} vs aware {}",
            r_blind.out_gbps(),
            r_aware.out_gbps()
        );
    }

    #[test]
    fn fig5_single_core_batching() {
        for (batch, lo, hi) in [(1usize, 0.6, 1.0), (64, 9.0, 11.5)] {
            let cfg = RouterConfig::fig5(batch);
            let app = MinimalApp::new(ForwardPattern::SameNode, 2);
            let report = Router::run(cfg, app, spec(20.0, 2), 4 * MILLIS);
            let out = report.out_gbps();
            assert!(
                (lo..hi).contains(&out),
                "batch {batch}: {out} Gbps not in [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let cfg = RouterConfig::paper_cpu();
            let app = MinimalApp::new(ForwardPattern::SameNode, 8);
            let r = Router::run(cfg, app, spec(30.0, 8), 2 * MILLIS);
            (r.delivered.packets, r.latency.p50(), r.rx_drops)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_reasonable_at_moderate_load() {
        let cfg = RouterConfig::paper_cpu();
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let report = Router::run(cfg, app, spec(20.0, 8), 4 * MILLIS);
        let p50 = report.latency.p50();
        assert!(
            (10 * MICROS..SECONDS).contains(&p50),
            "p50 latency {p50} ns"
        );
    }

    #[test]
    fn meta_hash_matches_frame_parse() {
        use ps_pktgen::TrafficKind;
        for kind in [TrafficKind::Ipv4Udp, TrafficKind::Ipv6Udp] {
            for flows in [None, Some(8)] {
                let mut g = Generator::new(TrafficSpec {
                    kind,
                    frame_len: 64,
                    offered_bits: 1_000_000_000,
                    ports: 4,
                    seed: 9,
                    flows,
                });
                for _ in 0..200 {
                    let meta = g.next_meta();
                    let p = g.materialize_into(&meta, Vec::new());
                    assert_eq!(
                        meta.rss_hash(),
                        rss_hash(&p.data),
                        "kind {kind:?} flows {flows:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rss_hash_is_flow_stable() {
        let f1 = ps_net::PacketBuilder::udp_v4(
            ps_net::ethernet::MacAddr::local(1),
            ps_net::ethernet::MacAddr::local(2),
            "10.0.0.1".parse().expect("fixture src addr parses"),
            "10.0.0.2".parse().expect("fixture dst addr parses"),
            100,
            200,
            64,
        );
        assert_eq!(rss_hash(&f1), rss_hash(&f1));
        let f2 = ps_net::PacketBuilder::udp_v4(
            ps_net::ethernet::MacAddr::local(1),
            ps_net::ethernet::MacAddr::local(2),
            "10.0.0.1".parse().expect("fixture src addr parses"),
            "10.0.0.2".parse().expect("fixture dst addr parses"),
            100,
            201,
            64,
        );
        assert_ne!(rss_hash(&f1), rss_hash(&f2));
    }
}
