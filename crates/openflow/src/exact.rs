//! The exact-match flow table.
//!
//! Keys are the full ten-field tuple; the hash is FNV-1a over the
//! canonical key bytes — cheap, deterministic, and exactly the kind of
//! per-packet computation the paper offloads to the GPU for large
//! packet rates ("the performance improvement comes from offloading
//! the hash value computation", §6.3).

use std::collections::HashMap;

use ps_net::FlowKey;

use crate::action::Action;

/// FNV-1a 32-bit over the canonical 31-byte flow key serialization.
pub fn flow_hash(key: &FlowKey) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in key.to_bytes() {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    h
}

/// Per-flow statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

/// An installed exact-match entry.
#[derive(Debug, Clone, Copy)]
pub struct ExactEntry {
    /// The action to apply.
    pub action: Action,
    /// Match counters.
    pub stats: FlowStats,
}

/// The exact-match table, bucketed by [`flow_hash`].
///
/// A `HashMap` keyed by the *precomputed hash* plus the full key
/// mirrors the real structure: the GPU hands back hash values, the
/// CPU resolves buckets and compares keys.
#[derive(Debug, Default)]
pub struct ExactTable {
    buckets: HashMap<u32, Vec<(FlowKey, ExactEntry)>>,
    len: usize,
}

impl ExactTable {
    /// An empty table.
    pub fn new() -> ExactTable {
        ExactTable::default()
    }

    /// Installed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Install (or replace) an entry.
    pub fn insert(&mut self, key: FlowKey, action: Action) {
        let h = flow_hash(&key);
        let bucket = self.buckets.entry(h).or_default();
        if let Some((_, e)) = bucket.iter_mut().find(|(k, _)| *k == key) {
            e.action = action;
            return;
        }
        bucket.push((
            key,
            ExactEntry {
                action,
                stats: FlowStats::default(),
            },
        ));
        self.len += 1;
    }

    /// Look up with a precomputed hash (the GPU-assisted path);
    /// updates flow counters on hit.
    pub fn lookup_with_hash(&mut self, hash: u32, key: &FlowKey, bytes: u64) -> Option<Action> {
        let bucket = self.buckets.get_mut(&hash)?;
        let (_, e) = bucket.iter_mut().find(|(k, _)| k == key)?;
        e.stats.packets += 1;
        e.stats.bytes += bytes;
        Some(e.action)
    }

    /// CPU-only path: hash and look up.
    pub fn lookup(&mut self, key: &FlowKey, bytes: u64) -> Option<Action> {
        self.lookup_with_hash(flow_hash(key), key, bytes)
    }

    /// Read a flow's counters.
    pub fn stats(&self, key: &FlowKey) -> Option<FlowStats> {
        self.buckets
            .get(&flow_hash(key))?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, e)| e.stats)
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&mut self, key: &FlowKey) -> bool {
        let h = flow_hash(&key.clone());
        if let Some(bucket) = self.buckets.get_mut(&h) {
            let before = bucket.len();
            bucket.retain(|(k, _)| k != key);
            if bucket.len() < before {
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u16) -> FlowKey {
        FlowKey {
            in_port: n,
            dl_type: 0x0800,
            nw_src: 0x0A000000 | u32::from(n),
            nw_dst: 0x0B000000,
            nw_proto: 17,
            tp_src: n,
            tp_dst: 53,
            ..FlowKey::default()
        }
    }

    #[test]
    fn insert_lookup_hit_and_miss() {
        let mut t = ExactTable::new();
        t.insert(key(1), Action::Output(3));
        assert_eq!(t.lookup(&key(1), 64), Some(Action::Output(3)));
        assert_eq!(t.lookup(&key(2), 64), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_updates_action() {
        let mut t = ExactTable::new();
        t.insert(key(1), Action::Output(3));
        t.insert(key(1), Action::Drop);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&key(1), 64), Some(Action::Drop));
    }

    #[test]
    fn stats_accumulate() {
        let mut t = ExactTable::new();
        t.insert(key(5), Action::Output(1));
        t.lookup(&key(5), 64);
        t.lookup(&key(5), 1500);
        let s = t.stats(&key(5)).unwrap();
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 1564);
        assert!(t.stats(&key(6)).is_none());
    }

    #[test]
    fn precomputed_hash_path_agrees() {
        let mut t = ExactTable::new();
        t.insert(key(9), Action::Output(2));
        let h = flow_hash(&key(9));
        assert_eq!(t.lookup_with_hash(h, &key(9), 64), Some(Action::Output(2)));
        // Wrong hash, right key: miss (the bucket is addressed by hash).
        assert_eq!(t.lookup_with_hash(h ^ 1, &key(9), 64), None);
    }

    #[test]
    fn remove_works() {
        let mut t = ExactTable::new();
        t.insert(key(1), Action::Drop);
        assert!(t.remove(&key(1)));
        assert!(!t.remove(&key(1)));
        assert!(t.is_empty());
        assert_eq!(t.lookup(&key(1), 64), None);
    }

    #[test]
    fn hash_distributes() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..1000 {
            seen.insert(flow_hash(&key(n)) % 256);
        }
        assert!(seen.len() > 200, "only {} distinct buckets", seen.len());
    }

    #[test]
    fn scales_to_32k_entries() {
        // The NetFPGA comparison config (§6.3): 32K exact entries.
        let mut t = ExactTable::new();
        for n in 0..32_768u32 {
            let mut k = key((n % 60_000) as u16);
            k.nw_dst = n;
            t.insert(k, Action::Output((n % 8) as u16));
        }
        assert_eq!(t.len(), 32_768);
        let mut k = key(100);
        k.nw_dst = 100;
        assert_eq!(t.lookup(&k, 64), Some(Action::Output(4)));
    }
}
