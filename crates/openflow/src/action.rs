//! Flow actions (the subset the data-path evaluation exercises).

/// What to do with a matched packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward out a port.
    Output(u16),
    /// Drop silently.
    Drop,
    /// Punt to the controller (slow path).
    Controller,
}

impl Action {
    /// Encode for the serialized wildcard image: output ports are
    /// their index, 0xFFFE = drop, 0xFFFF = controller.
    pub fn encode(&self) -> u16 {
        match self {
            Action::Output(p) => {
                assert!(*p < 0xFFFE, "port index too large");
                *p
            }
            Action::Drop => 0xFFFE,
            Action::Controller => 0xFFFF,
        }
    }

    /// Decode from the serialized form.
    pub fn decode(raw: u16) -> Action {
        match raw {
            0xFFFE => Action::Drop,
            0xFFFF => Action::Controller,
            p => Action::Output(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for a in [
            Action::Output(0),
            Action::Output(7),
            Action::Drop,
            Action::Controller,
        ] {
            assert_eq!(Action::decode(a.encode()), a);
        }
    }

    #[test]
    #[should_panic(expected = "port index too large")]
    fn reserved_port_rejected() {
        let _ = Action::Output(0xFFFE).encode();
    }
}
