//! # ps-openflow — OpenFlow 0.8.9 switch substrate (§6.2.3)
//!
//! The two flow tables of the OpenFlow 0.8.9r2 reference switch:
//!
//! * [`exact`] — the exact-match table: all ten [`ps_net::FlowKey`] fields
//!   hashed (FNV-1a, the hash the paper offloads to the GPU) into a
//!   bucketed hash table;
//! * [`wildcard`] — the wildcard table: per-field enable bits plus
//!   CIDR bitmasks for the IP fields, priority-ordered **linear
//!   search**, "as the reference implementation does" — this is the
//!   cost that grows with table size in Figure 11(c) and that the GPU
//!   absorbs;
//! * [`switch`] — the combined lookup (exact-match entries always
//!   take precedence over wildcard entries) with per-flow counters
//!   and a controller-miss path.
//!
//! The wildcard table serializes to a flat image (64 B entries) so the
//! same matching code drives the CPU path and the simulated GPU
//! kernel through `ps-lookup`'s `TableMem` accessor.

pub mod action;
pub mod exact;
pub mod switch;
pub mod wildcard;

pub use action::Action;
pub use exact::{flow_hash, ExactTable};
pub use switch::{LookupResult, OpenFlowSwitch};
pub use wildcard::{WildcardEntry, WildcardTable, ENTRY_SIZE};
