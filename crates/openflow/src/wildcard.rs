//! The wildcard-match table: priority-ordered linear search with
//! per-field enable bits and CIDR masks for the IP fields — the
//! reference-switch semantics the paper reimplements (§6.2.3).
//!
//! Entries serialize into a flat 64-byte-per-entry image so the same
//! match loop runs on the CPU (slice) and the simulated GPU (device
//! memory via `TableMem`). Hardware switches use TCAM for this; the
//! linear scan is precisely the cost Figure 11(c) sweeps.

use ps_lookup::mem::{SliceMem, TableMem};
use ps_net::FlowKey;

use crate::action::Action;

/// Field-presence bits (1 = match this field).
pub mod wc {
    /// Match `in_port`.
    pub const IN_PORT: u16 = 1 << 0;
    /// Match `dl_src`.
    pub const DL_SRC: u16 = 1 << 1;
    /// Match `dl_dst`.
    pub const DL_DST: u16 = 1 << 2;
    /// Match `dl_vlan`.
    pub const DL_VLAN: u16 = 1 << 3;
    /// Match `dl_type`.
    pub const DL_TYPE: u16 = 1 << 4;
    /// Match `nw_src` under its mask.
    pub const NW_SRC: u16 = 1 << 5;
    /// Match `nw_dst` under its mask.
    pub const NW_DST: u16 = 1 << 6;
    /// Match `nw_proto`.
    pub const NW_PROTO: u16 = 1 << 7;
    /// Match `tp_src`.
    pub const TP_SRC: u16 = 1 << 8;
    /// Match `tp_dst`.
    pub const TP_DST: u16 = 1 << 9;
}

/// One wildcard rule.
#[derive(Debug, Clone, Copy)]
pub struct WildcardEntry {
    /// Which fields participate in the match.
    pub fields: u16,
    /// Higher priority wins; ties resolve to the earlier insertion.
    pub priority: u16,
    /// Template key (only enabled fields are consulted).
    pub key: FlowKey,
    /// CIDR mask for `nw_src` (host-order bits).
    pub nw_src_mask: u32,
    /// CIDR mask for `nw_dst`.
    pub nw_dst_mask: u32,
    /// Action on match.
    pub action: Action,
}

impl WildcardEntry {
    /// Does `key` satisfy this rule?
    pub fn matches(&self, key: &FlowKey) -> bool {
        let f = self.fields;
        (f & wc::IN_PORT == 0 || key.in_port == self.key.in_port)
            && (f & wc::DL_SRC == 0 || key.dl_src == self.key.dl_src)
            && (f & wc::DL_DST == 0 || key.dl_dst == self.key.dl_dst)
            && (f & wc::DL_VLAN == 0 || key.dl_vlan == self.key.dl_vlan)
            && (f & wc::DL_TYPE == 0 || key.dl_type == self.key.dl_type)
            && (f & wc::NW_SRC == 0
                || key.nw_src & self.nw_src_mask == self.key.nw_src & self.nw_src_mask)
            && (f & wc::NW_DST == 0
                || key.nw_dst & self.nw_dst_mask == self.key.nw_dst & self.nw_dst_mask)
            && (f & wc::NW_PROTO == 0 || key.nw_proto == self.key.nw_proto)
            && (f & wc::TP_SRC == 0 || key.tp_src == self.key.tp_src)
            && (f & wc::TP_DST == 0 || key.tp_dst == self.key.tp_dst)
    }
}

/// Bytes per serialized entry.
pub const ENTRY_SIZE: usize = 64;

/// The wildcard table, kept sorted by descending priority.
#[derive(Debug, Default)]
pub struct WildcardTable {
    entries: Vec<WildcardEntry>,
}

impl WildcardTable {
    /// An empty table.
    pub fn new() -> WildcardTable {
        WildcardTable::default()
    }

    /// Installed rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Install a rule (stable sort keeps insertion order within a
    /// priority level).
    pub fn insert(&mut self, entry: WildcardEntry) {
        let pos = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(pos, entry);
    }

    /// Linear search; first (= highest-priority) match wins. Returns
    /// the action and how many entries were scanned (the cost).
    pub fn lookup(&self, key: &FlowKey) -> (Option<Action>, usize) {
        for (i, e) in self.entries.iter().enumerate() {
            if e.matches(key) {
                return (Some(e.action), i + 1);
            }
        }
        (None, self.entries.len())
    }

    /// Serialize to the flat image the GPU kernel scans.
    ///
    /// Entry layout (little-endian):
    /// `fields:u16 prio:u16 in_port:u16 dl_vlan:u16 dl_type:u16
    ///  nw_proto:u8 pad:u8 tp_src:u16 tp_dst:u16 nw_src:u32
    ///  nw_src_mask:u32 nw_dst:u32 nw_dst_mask:u32 dl_src:6 dl_dst:6
    ///  action:u16 pad..64`
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.entries.len() * ENTRY_SIZE];
        for (i, e) in self.entries.iter().enumerate() {
            let o = i * ENTRY_SIZE;
            out[o..o + 2].copy_from_slice(&e.fields.to_le_bytes());
            out[o + 2..o + 4].copy_from_slice(&e.priority.to_le_bytes());
            out[o + 4..o + 6].copy_from_slice(&e.key.in_port.to_le_bytes());
            out[o + 6..o + 8].copy_from_slice(&e.key.dl_vlan.to_le_bytes());
            out[o + 8..o + 10].copy_from_slice(&e.key.dl_type.to_le_bytes());
            out[o + 10] = e.key.nw_proto;
            out[o + 12..o + 14].copy_from_slice(&e.key.tp_src.to_le_bytes());
            out[o + 14..o + 16].copy_from_slice(&e.key.tp_dst.to_le_bytes());
            out[o + 16..o + 20].copy_from_slice(&e.key.nw_src.to_le_bytes());
            out[o + 20..o + 24].copy_from_slice(&e.nw_src_mask.to_le_bytes());
            out[o + 24..o + 28].copy_from_slice(&e.key.nw_dst.to_le_bytes());
            out[o + 28..o + 32].copy_from_slice(&e.nw_dst_mask.to_le_bytes());
            out[o + 32..o + 38].copy_from_slice(&e.key.dl_src);
            out[o + 38..o + 44].copy_from_slice(&e.key.dl_dst);
            out[o + 44..o + 46].copy_from_slice(&e.action.encode().to_le_bytes());
        }
        out
    }

    /// The match loop over a serialized image; used verbatim by the
    /// GPU kernel. Returns `(encoded_action, entries_scanned)`;
    /// `None` action when nothing matches after scanning all entries.
    pub fn lookup_image<M: TableMem>(
        mem: &mut M,
        base: usize,
        n_entries: usize,
        key: &FlowKey,
    ) -> (Option<u16>, usize) {
        for i in 0..n_entries {
            let o = base + i * ENTRY_SIZE;
            // One 64B entry = typically one cache line / segment read.
            let raw: [u8; 46] = mem.read_bytes::<46>(o);
            let fields = u16::from_le_bytes([raw[0], raw[1]]);
            let m_in_port = u16::from_le_bytes([raw[4], raw[5]]);
            let m_vlan = u16::from_le_bytes([raw[6], raw[7]]);
            let m_type = u16::from_le_bytes([raw[8], raw[9]]);
            let m_proto = raw[10];
            let m_tp_src = u16::from_le_bytes([raw[12], raw[13]]);
            let m_tp_dst = u16::from_le_bytes([raw[14], raw[15]]);
            let m_nw_src = u32::from_le_bytes([raw[16], raw[17], raw[18], raw[19]]);
            let m_src_mask = u32::from_le_bytes([raw[20], raw[21], raw[22], raw[23]]);
            let m_nw_dst = u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]);
            let m_dst_mask = u32::from_le_bytes([raw[28], raw[29], raw[30], raw[31]]);
            let m_dl_src: [u8; 6] = raw[32..38].try_into().expect("fixed");
            let m_dl_dst: [u8; 6] = raw[38..44].try_into().expect("fixed");
            let action = u16::from_le_bytes([raw[44], raw[45]]);

            let hit = (fields & wc::IN_PORT == 0 || key.in_port == m_in_port)
                && (fields & wc::DL_SRC == 0 || key.dl_src == m_dl_src)
                && (fields & wc::DL_DST == 0 || key.dl_dst == m_dl_dst)
                && (fields & wc::DL_VLAN == 0 || key.dl_vlan == m_vlan)
                && (fields & wc::DL_TYPE == 0 || key.dl_type == m_type)
                && (fields & wc::NW_SRC == 0 || key.nw_src & m_src_mask == m_nw_src & m_src_mask)
                && (fields & wc::NW_DST == 0 || key.nw_dst & m_dst_mask == m_nw_dst & m_dst_mask)
                && (fields & wc::NW_PROTO == 0 || key.nw_proto == m_proto)
                && (fields & wc::TP_SRC == 0 || key.tp_src == m_tp_src)
                && (fields & wc::TP_DST == 0 || key.tp_dst == m_tp_dst);
            if hit {
                return (Some(action), i + 1);
            }
        }
        (None, n_entries)
    }

    /// Convenience: image lookup against this table's own image.
    pub fn lookup_via_image(&self, key: &FlowKey) -> (Option<Action>, usize) {
        let image = self.to_image();
        let mut mem = SliceMem::new(&image);
        let (raw, scanned) = Self::lookup_image(&mut mem, 0, self.entries.len(), key);
        (raw.map(Action::decode), scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fields: u16, priority: u16, action: Action) -> WildcardEntry {
        WildcardEntry {
            fields,
            priority,
            key: FlowKey {
                in_port: 2,
                dl_type: 0x0800,
                nw_src: 0x0A000000,
                nw_dst: 0x0B000000,
                nw_proto: 17,
                tp_src: 1000,
                tp_dst: 53,
                dl_vlan: 0xFFFF,
                ..FlowKey::default()
            },
            nw_src_mask: 0xFF000000,
            nw_dst_mask: 0xFFFF0000,
            action,
        }
    }

    fn packet_key() -> FlowKey {
        FlowKey {
            in_port: 2,
            dl_type: 0x0800,
            nw_src: 0x0A223344,
            nw_dst: 0x0B005566,
            nw_proto: 17,
            tp_src: 1000,
            tp_dst: 53,
            dl_vlan: 0xFFFF,
            ..FlowKey::default()
        }
    }

    #[test]
    fn masked_ip_match() {
        let mut t = WildcardTable::new();
        t.insert(entry(wc::NW_SRC | wc::NW_DST, 10, Action::Output(1)));
        let (a, scanned) = t.lookup(&packet_key());
        assert_eq!(a, Some(Action::Output(1)));
        assert_eq!(scanned, 1);
        // Off-mask address misses.
        let mut k = packet_key();
        k.nw_src = 0x0C000000;
        assert_eq!(t.lookup(&k).0, None);
    }

    #[test]
    fn priority_order_wins() {
        let mut t = WildcardTable::new();
        t.insert(entry(wc::NW_SRC, 1, Action::Drop));
        t.insert(entry(wc::NW_SRC, 100, Action::Output(7)));
        t.insert(entry(wc::NW_SRC, 50, Action::Output(2)));
        let (a, _) = t.lookup(&packet_key());
        assert_eq!(a, Some(Action::Output(7)));
    }

    #[test]
    fn match_all_entry() {
        let mut t = WildcardTable::new();
        t.insert(entry(0, 0, Action::Controller));
        // fields==0 matches anything.
        assert_eq!(t.lookup(&FlowKey::default()).0, Some(Action::Controller));
    }

    #[test]
    fn scan_cost_grows_with_misses() {
        let mut t = WildcardTable::new();
        for p in 0..100 {
            let mut e = entry(wc::TP_DST, p, Action::Drop);
            e.key.tp_dst = 10_000 + p; // never matches port 53
            t.insert(e);
        }
        let (a, scanned) = t.lookup(&packet_key());
        assert_eq!(a, None);
        assert_eq!(scanned, 100);
    }

    #[test]
    fn per_field_matching() {
        // Each field bit must actually gate its comparison.
        let fields = [
            wc::IN_PORT,
            wc::DL_SRC,
            wc::DL_DST,
            wc::DL_VLAN,
            wc::DL_TYPE,
            wc::NW_SRC,
            wc::NW_DST,
            wc::NW_PROTO,
            wc::TP_SRC,
            wc::TP_DST,
        ];
        for f in fields {
            let mut t = WildcardTable::new();
            let mut e = entry(f, 1, Action::Output(1));
            e.nw_src_mask = u32::MAX;
            e.nw_dst_mask = u32::MAX;
            e.key = packet_key();
            t.insert(e);
            assert_eq!(
                t.lookup(&packet_key()).0,
                Some(Action::Output(1)),
                "field {f:#x}"
            );
            // Perturb the matched field -> miss.
            let mut k = packet_key();
            match f {
                wc::IN_PORT => k.in_port ^= 1,
                wc::DL_SRC => k.dl_src[0] ^= 1,
                wc::DL_DST => k.dl_dst[0] ^= 1,
                wc::DL_VLAN => k.dl_vlan ^= 1,
                wc::DL_TYPE => k.dl_type ^= 1,
                wc::NW_SRC => k.nw_src ^= 1,
                wc::NW_DST => k.nw_dst ^= 1,
                wc::NW_PROTO => k.nw_proto ^= 1,
                wc::TP_SRC => k.tp_src ^= 1,
                _ => k.tp_dst ^= 1,
            }
            assert_eq!(t.lookup(&k).0, None, "field {f:#x} perturbed");
        }
    }

    #[test]
    fn image_lookup_agrees_with_native() {
        let mut t = WildcardTable::new();
        t.insert(entry(wc::NW_SRC | wc::TP_DST, 5, Action::Output(3)));
        t.insert(entry(wc::NW_DST, 9, Action::Drop));
        for key in [packet_key(), FlowKey::default(), {
            let mut k = packet_key();
            k.nw_dst = 0x0B00FFFF;
            k.tp_dst = 99;
            k
        }] {
            let native = t.lookup(&key);
            let image = t.lookup_via_image(&key);
            assert_eq!(native, image, "key {key:?}");
        }
    }

    #[test]
    fn image_size() {
        let mut t = WildcardTable::new();
        for p in 0..32 {
            t.insert(entry(wc::NW_SRC, p, Action::Drop));
        }
        assert_eq!(t.to_image().len(), 32 * ENTRY_SIZE);
    }
}
