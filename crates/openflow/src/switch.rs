//! The combined OpenFlow switch lookup: exact entries take precedence
//! over wildcard entries; misses punt to the controller (§6.2.3).

use ps_net::FlowKey;

use crate::action::Action;
use crate::exact::{flow_hash, ExactTable};
use crate::wildcard::{WildcardEntry, WildcardTable};

/// Outcome of a switch lookup, with the costs the timing model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The action to apply (Controller on total miss).
    pub action: Action,
    /// Whether the exact table hit.
    pub exact_hit: bool,
    /// Wildcard entries scanned (0 when the exact table hit).
    pub wildcard_scanned: usize,
}

/// The switch: both tables plus miss accounting.
#[derive(Debug, Default)]
pub struct OpenFlowSwitch {
    /// Exact-match table.
    pub exact: ExactTable,
    /// Wildcard table.
    pub wildcard: WildcardTable,
    /// Packets punted to the controller.
    pub misses: u64,
}

impl OpenFlowSwitch {
    /// An empty switch.
    pub fn new() -> OpenFlowSwitch {
        OpenFlowSwitch::default()
    }

    /// Install an exact-match flow.
    pub fn add_exact(&mut self, key: FlowKey, action: Action) {
        self.exact.insert(key, action);
    }

    /// Install a wildcard flow.
    pub fn add_wildcard(&mut self, entry: WildcardEntry) {
        self.wildcard.insert(entry);
    }

    /// Full lookup for a packet of `bytes` length.
    pub fn lookup(&mut self, key: &FlowKey, bytes: u64) -> LookupResult {
        self.lookup_with_hash(flow_hash(key), key, bytes)
    }

    /// Lookup when the flow-key hash was computed elsewhere (the
    /// GPU-assisted path).
    pub fn lookup_with_hash(&mut self, hash: u32, key: &FlowKey, bytes: u64) -> LookupResult {
        if let Some(action) = self.exact.lookup_with_hash(hash, key, bytes) {
            return LookupResult {
                action,
                exact_hit: true,
                wildcard_scanned: 0,
            };
        }
        let (action, scanned) = self.wildcard.lookup(key);
        match action {
            Some(action) => LookupResult {
                action,
                exact_hit: false,
                wildcard_scanned: scanned,
            },
            None => {
                self.misses += 1;
                LookupResult {
                    action: Action::Controller,
                    exact_hit: false,
                    wildcard_scanned: scanned,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wildcard::wc;

    fn key(n: u16) -> FlowKey {
        FlowKey {
            in_port: 1,
            dl_type: 0x0800,
            nw_src: 0x0A000000 | u32::from(n),
            nw_dst: 0x0B000000,
            nw_proto: 17,
            tp_src: n,
            tp_dst: 53,
            ..FlowKey::default()
        }
    }

    fn wild(priority: u16, action: Action) -> WildcardEntry {
        WildcardEntry {
            fields: wc::NW_DST,
            priority,
            key: key(0),
            nw_src_mask: u32::MAX,
            nw_dst_mask: 0xFF000000,
            action,
        }
    }

    #[test]
    fn exact_takes_precedence() {
        let mut sw = OpenFlowSwitch::new();
        sw.add_wildcard(wild(100, Action::Drop));
        sw.add_exact(key(1), Action::Output(5));
        let r = sw.lookup(&key(1), 64);
        assert!(r.exact_hit);
        assert_eq!(r.action, Action::Output(5));
        assert_eq!(r.wildcard_scanned, 0);
    }

    #[test]
    fn wildcard_fallback() {
        let mut sw = OpenFlowSwitch::new();
        sw.add_wildcard(wild(100, Action::Output(2)));
        let r = sw.lookup(&key(9), 64);
        assert!(!r.exact_hit);
        assert_eq!(r.action, Action::Output(2));
        assert_eq!(r.wildcard_scanned, 1);
        assert_eq!(sw.misses, 0);
    }

    #[test]
    fn total_miss_goes_to_controller() {
        let mut sw = OpenFlowSwitch::new();
        let mut k = key(9);
        k.nw_dst = 0x0C000000; // outside the wildcard's /8
        sw.add_wildcard(wild(100, Action::Output(2)));
        let r = sw.lookup(&k, 64);
        assert_eq!(r.action, Action::Controller);
        assert_eq!(sw.misses, 1);
    }

    #[test]
    fn empty_switch_misses_everything() {
        let mut sw = OpenFlowSwitch::new();
        let r = sw.lookup(&key(0), 64);
        assert_eq!(r.action, Action::Controller);
        assert_eq!(r.wildcard_scanned, 0);
    }
}
