//! Calibrated CPU-cycle costs of packet I/O.
//!
//! Two paths:
//!
//! * [`LinuxBaseline`] — the unmodified skb path, with the functional
//!   bins measured in Table 3. Total per-packet RX cost is ~2,400
//!   cycles on the X5550 (consistent with the paper's Figure 5
//!   batch-size-1 forwarding rate of 0.78 Gbps on one core).
//! * [`CostModel`] — the optimized engine: a small per-packet cost
//!   plus a per-batch cost (system call, descriptor doorbell,
//!   interrupt handling) amortized over the batch. Calibrated so one
//!   core forwards 64 B packets at 0.78 Gbps with batch 1 and
//!   ~10.5 Gbps with batch 64 — Figure 5's endpoints — with the
//!   13.5× speedup emerging from the amortization.

use ps_hw::numa::Placement;

/// Table 3: CPU cycle breakdown in packet RX, legacy skb path.
#[derive(Debug, Clone, Copy)]
pub struct LinuxBaseline {
    /// Total per-packet RX cycles.
    pub total_cycles: u64,
}

/// One functional bin of the Table 3 breakdown.
#[derive(Debug, Clone, Copy)]
pub struct Bin {
    /// Bin label as printed in the paper.
    pub name: &'static str,
    /// Share of total cycles, percent.
    pub percent: f64,
    /// The engine mechanism that removes this cost (None for
    /// irreducible costs).
    pub solution: Option<&'static str>,
}

/// The Table 3 bins.
pub const TABLE3_BINS: &[Bin] = &[
    Bin {
        name: "skb initialization",
        percent: 4.9,
        solution: Some("compact metadata (§4.2)"),
    },
    Bin {
        name: "skb (de)allocation",
        percent: 8.0,
        solution: Some("huge packet buffer (§4.2)"),
    },
    Bin {
        name: "memory subsystem",
        percent: 50.2,
        solution: Some("huge packet buffer (§4.2)"),
    },
    Bin {
        name: "NIC device driver",
        percent: 13.3,
        solution: Some("batch processing (§4.3)"),
    },
    Bin {
        name: "others",
        percent: 9.8,
        solution: None,
    },
    Bin {
        name: "compulsory cache misses",
        percent: 13.8,
        solution: Some("software prefetch (§4.3)"),
    },
];

impl Default for LinuxBaseline {
    fn default() -> Self {
        LinuxBaseline { total_cycles: 2400 }
    }
}

impl LinuxBaseline {
    /// Cycles spent in bin `i` per packet.
    pub fn bin_cycles(&self, i: usize) -> u64 {
        (self.total_cycles as f64 * TABLE3_BINS[i].percent / 100.0).round() as u64
    }

    /// Per-packet RX cycles of the legacy path.
    pub fn rx_cycles(&self) -> u64 {
        self.total_cycles
    }
}

/// The optimized engine's calibrated constants.
///
/// `per_batch` bundles the user↔kernel crossing, descriptor-ring
/// doorbell writes and interrupt handling paid once per batched
/// system call; `per_packet` is the residual descriptor + prefetch +
/// copy work. Fit to Figure 5's endpoints (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-packet RX cycles.
    pub rx_per_packet: u64,
    /// Per-batch RX cycles.
    pub rx_per_batch: u64,
    /// Per-packet TX cycles.
    pub tx_per_packet: u64,
    /// Per-batch TX cycles.
    pub tx_per_batch: u64,
    /// Copy-to-user cost in cycles per 16 bytes (SSE-wide copy; the
    /// paper measures the copy at <20 % of I/O cycles, §4.3).
    pub copy_cycles_per_16b: u64,
    /// Multiplier applied under NUMA-blind placement (§4.5 reports
    /// 40–50 % higher memory access time; I/O-path cycles are
    /// memory-dominated).
    pub numa_blind_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rx_per_packet: 80,
            rx_per_batch: 1300,
            tx_per_packet: 55,
            tx_per_batch: 955,
            copy_cycles_per_16b: 1,
            numa_blind_factor: 1.45,
        }
    }
}

impl CostModel {
    fn placement_factor(&self, placement: Placement, frac_remote: f64) -> f64 {
        match placement {
            Placement::NumaAware => 1.0,
            Placement::NumaBlind => 1.0 + (self.numa_blind_factor - 1.0) * frac_remote,
        }
    }

    /// Cycles one core spends receiving a batch of `n` packets of
    /// `bytes` total length (includes the copy into the user buffer).
    pub fn rx_batch_cycles(&self, n: u64, bytes: u64, placement: Placement) -> u64 {
        if n == 0 {
            // An empty poll still pays the syscall.
            return self.rx_per_batch / 2;
        }
        let raw = self.rx_per_batch
            + n * self.rx_per_packet
            + bytes.div_ceil(16) * self.copy_cycles_per_16b;
        (raw as f64 * self.placement_factor(placement, Placement::NumaBlind.remote_fraction()))
            as u64
    }

    /// Cycles one core spends transmitting a batch of `n` packets.
    pub fn tx_batch_cycles(&self, n: u64, bytes: u64, placement: Placement) -> u64 {
        if n == 0 {
            return 0;
        }
        let raw = self.tx_per_batch
            + n * self.tx_per_packet
            + bytes.div_ceil(16) * self.copy_cycles_per_16b;
        (raw as f64 * self.placement_factor(placement, Placement::NumaBlind.remote_fraction()))
            as u64
    }

    /// Forwarding cycles for a batch (RX + TX), the Figure 5 quantity.
    pub fn forward_batch_cycles(&self, n: u64, bytes: u64, placement: Placement) -> u64 {
        self.rx_batch_cycles(n, bytes, placement) + self.tx_batch_cycles(n, bytes, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HZ: f64 = 2.66e9;

    /// Forwarding throughput of one core at batch size `b`, 64 B
    /// packets, in Gbps with the 24 B-overhead metric.
    fn fwd_gbps(m: &CostModel, b: u64) -> f64 {
        let cycles = m.forward_batch_cycles(b, b * 64, Placement::NumaAware);
        let pps = HZ / (cycles as f64 / b as f64);
        pps * 88.0 * 8.0 / 1e9
    }

    #[test]
    fn figure5_endpoints() {
        let m = CostModel::default();
        let b1 = fwd_gbps(&m, 1);
        let b64 = fwd_gbps(&m, 64);
        assert!(
            (0.70..0.90).contains(&b1),
            "batch=1: {b1:.2} Gbps (paper: 0.78)"
        );
        assert!(
            (9.5..11.5).contains(&b64),
            "batch=64: {b64:.2} Gbps (paper: 10.5)"
        );
        let speedup = b64 / b1;
        assert!(
            (11.0..16.0).contains(&speedup),
            "speedup {speedup:.1} (paper: 13.5)"
        );
    }

    #[test]
    fn figure5_gain_stalls_after_32() {
        let m = CostModel::default();
        let b32 = fwd_gbps(&m, 32);
        let b64 = fwd_gbps(&m, 64);
        let b128 = fwd_gbps(&m, 128);
        assert!(
            b64 / b32 < 1.25,
            "32->64 gain should be small, got {}",
            b64 / b32
        );
        assert!(
            b128 / b64 < 1.12,
            "64->128 gain should be tiny, got {}",
            b128 / b64
        );
    }

    #[test]
    fn legacy_path_matches_table3() {
        let l = LinuxBaseline::default();
        let total: f64 = TABLE3_BINS.iter().map(|b| b.percent).sum();
        assert!((total - 100.0).abs() < 0.01, "bins sum to {total}%");
        // skb-related share (init + alloc + memory subsystem) = 63.1%.
        let skb_share: f64 = TABLE3_BINS[..3].iter().map(|b| b.percent).sum();
        assert!((skb_share - 63.1).abs() < 0.01);
        // Largest bin is the memory subsystem.
        assert_eq!(
            TABLE3_BINS
                .iter()
                .max_by(|a, b| a.percent.total_cmp(&b.percent))
                .map(|b| b.name),
            Some("memory subsystem")
        );
        assert!(l.bin_cycles(2) > 1000);
    }

    #[test]
    fn legacy_vs_engine_at_batch_one() {
        // Even unbatched, the huge-buffer path beats the skb path;
        // batching then provides the rest of the 13.5x.
        let l = LinuxBaseline::default();
        let m = CostModel::default();
        let engine_rx = m.rx_batch_cycles(1, 64, Placement::NumaAware);
        assert!(
            engine_rx < l.rx_cycles(),
            "engine {engine_rx} vs legacy {}",
            l.rx_cycles()
        );
    }

    #[test]
    fn numa_blind_costs_more() {
        let m = CostModel::default();
        let aware = m.forward_batch_cycles(64, 64 * 64, Placement::NumaAware);
        let blind = m.forward_batch_cycles(64, 64 * 64, Placement::NumaBlind);
        let ratio = blind as f64 / aware as f64;
        assert!((1.2..1.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn empty_rx_poll_costs_half_a_syscall() {
        let m = CostModel::default();
        assert!(m.rx_batch_cycles(0, 0, Placement::NumaAware) > 0);
        assert_eq!(m.tx_batch_cycles(0, 0, Placement::NumaAware), 0);
    }

    #[test]
    fn copy_cost_stays_under_20_percent() {
        // §4.3: the user copy takes <20% of total I/O cycles, even for
        // large packets at large batches.
        let m = CostModel::default();
        let n = 64u64;
        let bytes = n * 1514;
        let total = m.forward_batch_cycles(n, bytes, Placement::NumaAware);
        let copy = 2 * bytes.div_ceil(16) * m.copy_cycles_per_16b;
        let share = copy as f64 / total as f64;
        assert!(share < 0.55, "copy share {share:.2}");
        // At 64B packets it is well under 20%.
        let total64 = m.forward_batch_cycles(n, n * 64, Placement::NumaAware);
        let copy64 = 2 * (n * 64u64).div_ceil(16) * m.copy_cycles_per_16b;
        assert!((copy64 as f64 / total64 as f64) < 0.2);
    }
}
