//! The packet record that flows through the simulated router.

use ps_nic::port::{PortId, QueueId};
use ps_sim::time::Time;

/// One packet in flight. The frame bytes are real (built by the
/// traffic generator, parsed and rewritten by the applications); the
/// metadata mirrors the engine's 8-byte compact descriptor plus
/// simulation bookkeeping.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Frame bytes (no FCS), 60..=1514.
    pub data: Vec<u8>,
    /// Port the packet arrived on.
    pub in_port: PortId,
    /// RX queue RSS selected.
    pub queue: QueueId,
    /// When the last bit arrived at the NIC.
    pub arrival: Time,
    /// Generator timestamp for RTT measurement (echoed back).
    pub gen_ts: Time,
    /// Monotonic id for order-preservation checks.
    pub id: u64,
    /// Output port decided by the application ([`None`] until routed).
    pub out_port: Option<PortId>,
    /// Set when fault injection damaged the frame on the wire; the
    /// router attributes this packet's eventual drop or delivery back
    /// to the fault ledger. Invisible to the applications.
    pub corrupted: bool,
    /// Latency-critical flow (matched by the priority classifier at
    /// admission). Priority packets ride a dedicated RX lane and
    /// bypass bulk batching; `false` whenever no classifier is
    /// configured.
    pub priority: bool,
}

impl Packet {
    /// A packet as the generator emits it.
    pub fn new(id: u64, data: Vec<u8>, in_port: PortId, gen_ts: Time) -> Packet {
        Packet {
            data,
            in_port,
            queue: QueueId(0),
            arrival: 0,
            gen_ts,
            id,
            out_port: None,
            corrupted: false,
            priority: false,
        }
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the frame is empty (never for well-formed packets).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let p = Packet::new(7, vec![0; 64], PortId(3), 1000);
        assert_eq!(p.len(), 64);
        assert_eq!(p.in_port, PortId(3));
        assert_eq!(p.out_port, None);
        assert_eq!(p.id, 7);
        assert!(!p.is_empty());
    }
}
