//! The huge packet buffer (§4.2, Figure 4(b)).
//!
//! Instead of allocating an skb + data buffer per packet, the driver
//! allocates two huge regions — one of fixed-size data cells, one of
//! compact metadata cells — and recycles cells as the RX ring wraps.
//! The functional simulation keeps real packet bytes in the cells so
//! aliasing bugs would corrupt real data and be caught by tests.

/// Data cell size: fits a 1,518 B maximum frame and satisfies the
/// NIC's 1,024 B alignment requirement (§4.2).
pub const CELL_SIZE: usize = 2048;

/// Compact metadata: 8 bytes (vs Linux's 208-byte skb, §4.2) —
/// `len:u16, port:u16, queue:u16, flags:u16`.
pub const METADATA_SIZE: usize = 8;

/// Handle to a cell in the huge buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef(u32);

/// The two huge regions plus a free list.
pub struct HugePacketBuffer {
    data: Vec<u8>,
    meta: Vec<u8>,
    free: Vec<u32>,
    cells: usize,
    /// High-water mark of simultaneously live cells.
    pub peak_live: usize,
}

impl HugePacketBuffer {
    /// A buffer of `cells` cells (one RX ring's worth per queue in the
    /// real engine).
    pub fn new(cells: usize) -> HugePacketBuffer {
        assert!(cells > 0);
        HugePacketBuffer {
            data: vec![0; cells * CELL_SIZE],
            meta: vec![0; cells * METADATA_SIZE],
            free: (0..cells as u32).rev().collect(),
            cells,
            peak_live: 0,
        }
    }

    /// Total cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Cells currently live.
    pub fn live(&self) -> usize {
        self.cells - self.free.len()
    }

    /// Take a cell for an arriving packet; `None` when exhausted
    /// (the RX ring would stop posting descriptors).
    pub fn alloc(&mut self) -> Option<CellRef> {
        let idx = self.free.pop()?;
        self.peak_live = self.peak_live.max(self.live());
        Some(CellRef(idx))
    }

    /// Return a cell to the free list.
    ///
    /// # Panics
    /// Panics on double-free — that is precisely the recycling bug
    /// the design must not have.
    pub fn release(&mut self, cell: CellRef) {
        assert!(
            !self.free.contains(&cell.0),
            "double release of cell {}",
            cell.0
        );
        assert!((cell.0 as usize) < self.cells, "foreign cell");
        self.free.push(cell.0);
    }

    /// Store a packet into a cell (the NIC's DMA write).
    pub fn write_packet(&mut self, cell: CellRef, frame: &[u8], port: u16, queue: u16) {
        assert!(frame.len() <= CELL_SIZE, "frame exceeds cell");
        let off = cell.0 as usize * CELL_SIZE;
        self.data[off..off + frame.len()].copy_from_slice(frame);
        let m = cell.0 as usize * METADATA_SIZE;
        self.meta[m..m + 2].copy_from_slice(&(frame.len() as u16).to_le_bytes());
        self.meta[m + 2..m + 4].copy_from_slice(&port.to_le_bytes());
        self.meta[m + 4..m + 6].copy_from_slice(&queue.to_le_bytes());
        self.meta[m + 6..m + 8].copy_from_slice(&0u16.to_le_bytes());
    }

    /// Borrow a stored packet's bytes.
    pub fn packet(&self, cell: CellRef) -> &[u8] {
        let m = cell.0 as usize * METADATA_SIZE;
        let len = u16::from_le_bytes([self.meta[m], self.meta[m + 1]]) as usize;
        let off = cell.0 as usize * CELL_SIZE;
        &self.data[off..off + len]
    }

    /// Stored metadata `(len, port, queue)`.
    pub fn metadata(&self, cell: CellRef) -> (u16, u16, u16) {
        let m = cell.0 as usize * METADATA_SIZE;
        (
            u16::from_le_bytes([self.meta[m], self.meta[m + 1]]),
            u16::from_le_bytes([self.meta[m + 2], self.meta[m + 3]]),
            u16::from_le_bytes([self.meta[m + 4], self.meta[m + 5]]),
        )
    }

    /// Copy a batch of packets out into a contiguous user buffer with
    /// per-packet offsets — the engine's copy-to-user step, which the
    /// paper chose over zero-copy "for better abstraction" (§4.3).
    pub fn copy_batch_to_user(&self, cells: &[CellRef]) -> (Vec<u8>, Vec<(usize, usize)>) {
        let mut buf = Vec::new();
        let mut index = Vec::new();
        self.copy_batch_to_user_into(cells, &mut buf, &mut index);
        (buf, index)
    }

    /// [`copy_batch_to_user`](Self::copy_batch_to_user) into caller-
    /// owned buffers, clearing them first. A steady-state RX loop
    /// reuses the same pair every batch and allocates nothing once
    /// their capacity reaches the largest batch seen.
    pub fn copy_batch_to_user_into(
        &self,
        cells: &[CellRef],
        buf: &mut Vec<u8>,
        index: &mut Vec<(usize, usize)>,
    ) {
        buf.clear();
        index.clear();
        let total: usize = cells.iter().map(|&c| self.packet(c).len()).sum();
        buf.reserve(total);
        index.reserve(cells.len());
        for &c in cells {
            let p = self.packet(c);
            index.push((buf.len(), p.len()));
            buf.extend_from_slice(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut hb = HugePacketBuffer::new(4);
        let a = hb.alloc().unwrap();
        let b = hb.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(hb.live(), 2);
        hb.release(a);
        assert_eq!(hb.live(), 1);
        // Recycled cell comes back.
        let c = hb.alloc().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut hb = HugePacketBuffer::new(2);
        assert!(hb.alloc().is_some());
        assert!(hb.alloc().is_some());
        assert!(hb.alloc().is_none());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_free_panics() {
        let mut hb = HugePacketBuffer::new(2);
        let a = hb.alloc().unwrap();
        hb.release(a);
        hb.release(a);
    }

    #[test]
    fn packets_do_not_alias() {
        let mut hb = HugePacketBuffer::new(8);
        let cells: Vec<_> = (0..8).map(|_| hb.alloc().unwrap()).collect();
        for (i, &c) in cells.iter().enumerate() {
            let frame = vec![i as u8; 60 + i];
            hb.write_packet(c, &frame, i as u16, (i * 2) as u16);
        }
        for (i, &c) in cells.iter().enumerate() {
            assert_eq!(hb.packet(c), &vec![i as u8; 60 + i][..]);
            assert_eq!(hb.metadata(c), ((60 + i) as u16, i as u16, (i * 2) as u16));
        }
    }

    #[test]
    fn copy_batch_preserves_order_and_bytes() {
        let mut hb = HugePacketBuffer::new(4);
        let cells: Vec<_> = (0..3).map(|_| hb.alloc().unwrap()).collect();
        hb.write_packet(cells[0], &[1; 60], 0, 0);
        hb.write_packet(cells[1], &[2; 100], 0, 0);
        hb.write_packet(cells[2], &[3; 64], 0, 0);
        let (buf, idx) = hb.copy_batch_to_user(&cells);
        assert_eq!(idx, vec![(0, 60), (60, 100), (160, 64)]);
        assert_eq!(buf.len(), 224);
        assert_eq!(&buf[60..160], &[2; 100][..]);
    }

    #[test]
    fn copy_batch_into_reuses_buffers() {
        let mut hb = HugePacketBuffer::new(4);
        let cells: Vec<_> = (0..3).map(|_| hb.alloc().unwrap()).collect();
        hb.write_packet(cells[0], &[1; 60], 0, 0);
        hb.write_packet(cells[1], &[2; 100], 0, 0);
        hb.write_packet(cells[2], &[3; 64], 0, 0);
        let mut buf = vec![0xFFu8; 999]; // stale contents must vanish
        let mut idx = vec![(7usize, 7usize)];
        hb.copy_batch_to_user_into(&cells, &mut buf, &mut idx);
        assert_eq!((buf.clone(), idx.clone()), hb.copy_batch_to_user(&cells));
        let cap = buf.capacity();
        hb.copy_batch_to_user_into(&cells, &mut buf, &mut idx);
        assert_eq!(buf.capacity(), cap, "steady state must not reallocate");
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut hb = HugePacketBuffer::new(4);
        let a = hb.alloc().unwrap();
        let b = hb.alloc().unwrap();
        hb.release(a);
        hb.release(b);
        let _ = hb.alloc().unwrap();
        assert_eq!(hb.peak_live, 2);
    }

    #[test]
    fn recycling_over_many_wraps() {
        let mut hb = HugePacketBuffer::new(3);
        for round in 0..100u32 {
            let c = hb.alloc().unwrap();
            hb.write_packet(c, &[round as u8; 64], 1, 2);
            assert_eq!(hb.packet(c)[0], round as u8);
            hb.release(c);
        }
    }
}
