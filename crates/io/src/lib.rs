//! # ps-io — the optimized packet I/O engine (paper §4)
//!
//! The paper's first contribution: user-level multi-10G packet I/O.
//! This crate holds the engine's data structures and cost models; the
//! event-driven router that drives them lives in `ps-core`.
//!
//! * [`hugebuf`] — the huge packet buffer (Figure 4(b)): fixed
//!   2,048 B data cells and 8 B compact metadata cells, recycled with
//!   the RX ring instead of per-packet skb allocation;
//! * [`packet`] — the owned packet record that moves through the
//!   simulated pipeline;
//! * [`cost`] — the calibrated CPU-cycle model: the legacy Linux skb
//!   path with Table 3's bins, and the batched engine path whose
//!   per-packet + per-batch split reproduces Figure 5;
//! * [`config`] — engine knobs: batch cap, NUMA placement policy,
//!   queue↔core maps;
//! * [`trace`] — `io`-category trace events for batch assembly (see
//!   OBSERVABILITY.md).

pub mod config;
pub mod cost;
pub mod hugebuf;
pub mod packet;
pub mod trace;

pub use config::IoConfig;
pub use cost::{CostModel, LinuxBaseline};
pub use hugebuf::HugePacketBuffer;
pub use packet::Packet;

/// DMA bytes a frame of `len` costs on the fabric: payload rounded up
/// to whole 64 B cache lines (DMA writes full lines, §4.1) plus a
/// 16 B descriptor write-back/fetch.
#[inline]
pub fn dma_bytes(len: usize) -> u64 {
    (len.div_ceil(64) * 64 + 16) as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn dma_rounding() {
        assert_eq!(super::dma_bytes(64), 80);
        assert_eq!(super::dma_bytes(65), 144);
        assert_eq!(super::dma_bytes(1514), 1536 + 16);
    }
}
