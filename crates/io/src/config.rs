//! Engine configuration: the knobs the paper's experiments vary.

use ps_hw::numa::Placement;

/// Packet I/O engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Maximum packets fetched per batched RX call (the chunk cap,
    /// §5.3; Figure 5 sweeps this).
    pub batch_cap: usize,
    /// RX/TX descriptor ring entries per queue.
    pub ring_entries: usize,
    /// NUMA placement policy (§4.5).
    pub placement: Placement,
    /// Software prefetch of descriptors/data (§4.3). Disabling it
    /// re-exposes the compulsory-cache-miss bin of Table 3.
    pub prefetch: bool,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            batch_cap: 64,
            ring_entries: 1024,
            placement: Placement::NumaAware,
            prefetch: true,
        }
    }
}

impl IoConfig {
    /// The tuned configuration the paper evaluates.
    pub fn paper() -> IoConfig {
        IoConfig::default()
    }

    /// Packet-by-packet processing (Figure 5's batch size 1).
    pub fn unbatched() -> IoConfig {
        IoConfig {
            batch_cap: 1,
            ..IoConfig::default()
        }
    }

    /// The NUMA-blind baseline of §4.5.
    pub fn numa_blind() -> IoConfig {
        IoConfig {
            placement: Placement::NumaBlind,
            ..IoConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(IoConfig::paper().batch_cap, 64);
        assert_eq!(IoConfig::unbatched().batch_cap, 1);
        assert_eq!(IoConfig::numa_blind().placement, Placement::NumaBlind);
        assert!(IoConfig::default().prefetch);
    }
}
