//! Batch-assembly trace events (the `io` category).
//!
//! The I/O engine's defining trick is batching (§4.2): workers fetch
//! up to 64 RX descriptors per syscall-equivalent and hand whole
//! batches down the pipeline. These helpers give that assembly a
//! trace vocabulary — one span per assembled batch plus ring-depth
//! counters — so a timeline shows how batch size breathes with load.
//! The router calls them at the points where it already knows the
//! batch boundaries; they never compute times of their own, so
//! tracing cannot perturb the virtual clock.

use ps_sim::time::Time;
use ps_trace::{complete, counter, Category};

/// One assembled RX batch: `n` frames totalling `bytes` frame bytes,
/// fetched by worker `lane` over `[start, end]` (the span the worker
/// spent pulling descriptors and prefetching payloads).
pub fn trace_rx_batch(lane: u32, start: Time, end: Time, n: u64, bytes: u64) {
    complete(Category::Io, "rx_batch", lane, start, end, || {
        vec![("pkts", n), ("bytes", bytes)]
    });
}

/// One completed TX batch: `n` frames totalling `bytes` frame bytes,
/// queued to the NIC by worker `lane` over `[start, end]`.
pub fn trace_tx_batch(lane: u32, start: Time, end: Time, n: u64, bytes: u64) {
    complete(Category::Io, "tx_batch", lane, start, end, || {
        vec![("pkts", n), ("bytes", bytes)]
    });
}

/// Sample the RX ring occupancy for worker `lane` at `now`. Rendered
/// as a counter track ("C" event) in the Chrome exporter.
pub fn trace_ring_depth(lane: u32, now: Time, depth: u64) {
    counter(Category::Io, "ring_depth", lane, now, depth);
}

/// Sample the *priority* RX ring occupancy for worker `lane` at
/// `now`. Only emitted when a priority classifier is configured.
pub fn trace_prio_ring_depth(lane: u32, now: Time, depth: u64) {
    counter(Category::Io, "prio_ring_depth", lane, now, depth);
}

/// Sample the effective (adaptive) RX fetch cap worker `lane` used at
/// `now`. Only emitted in adaptive-batching mode, so default-mode
/// trace dumps stay byte-identical.
pub fn trace_batch_cap(lane: u32, now: Time, cap: u64) {
    counter(Category::Io, "batch_cap", lane, now, cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_trace::{install, take, Collector, Phase, TraceConfig};

    #[test]
    fn helpers_emit_io_events() {
        install(Collector::new(TraceConfig::all()));
        trace_rx_batch(2, 100, 400, 16, 1024);
        trace_tx_batch(2, 500, 600, 16, 1024);
        trace_ring_depth(2, 450, 7);
        let c = take().unwrap();
        let (events, unmatched) = c.resolved();
        assert_eq!(unmatched, 0);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.cat == Category::Io));
        assert_eq!(events[0].name, "rx_batch");
        assert_eq!(events[0].dur(), 300);
        assert!(matches!(events[1].phase, Phase::Counter { value: 7 }));
        assert_eq!(events[2].name, "tx_batch");
    }

    #[test]
    fn helpers_are_silent_without_a_tracer() {
        assert!(take().is_none());
        trace_rx_batch(0, 0, 10, 1, 60);
        trace_ring_depth(0, 5, 1);
        assert!(take().is_none());
    }
}
