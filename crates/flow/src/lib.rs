//! # ps-flow — a deterministic cuckoo flow cache for stateful NFs
//!
//! PacketShader's four applications are stateless per packet; a
//! production dataplane carries *per-flow* state under churn (NAT
//! bindings, load-balancer stickiness). This crate provides the state
//! store they share: a set-associative cuckoo hash table keyed on the
//! RSS 5-tuple, sized for millions of entries, with
//!
//! * **two-choice cuckoo placement** — every key hashes to two
//!   4-way buckets; insertion relocates residents along a bounded,
//!   precomputed kick chain so no entry is ever left homeless;
//! * **LRU eviction** — when both buckets are full and no chain
//!   frees a slot, the least-recently-seen candidate is evicted
//!   (deterministic tie-break by bucket, then slot);
//! * **idle expiry on the virtual clock** — every touch stamps the
//!   entry with the packet's arrival time; entries idle longer than
//!   the timeout are reclaimed lazily on access or by an explicit
//!   sweep. No wall-clock time is ever consulted.
//!
//! Everything is a pure function of the operation sequence: the same
//! inserts and lookups at the same virtual times produce the same
//! table, the same evictions and the same statistics — the property
//! that lets the sharded runtime replicate per-NUMA-node caches and
//! still merge byte-identical reports (DESIGN.md §10).

#![deny(missing_docs)]

use ps_rng::splitmix64;
use ps_sim::time::Time;

/// The RSS-style 5-tuple `(src addr, dst addr, src port, dst port,
/// protocol)` — the shape `ps_net::FlowKey::five_tuple` returns.
pub type FlowTuple = (u32, u32, u16, u16, u8);

/// Slots per bucket (set associativity). Four 5-tuple entries keep a
/// bucket within one or two cache lines, the layout hardware cuckoo
/// tables use.
pub const WAYS: usize = 4;

/// Bound on the cuckoo kick chain explored per insertion. Chains this
/// long are vanishingly rare below ~90% load; past the bound the
/// insert falls back to LRU eviction.
pub const MAX_KICKS: usize = 8;

/// Canonical byte serialization of a flow tuple — the exact bytes the
/// GPU hash kernel reads, so device and host hash identical input.
pub fn tuple_bytes(t: &FlowTuple) -> [u8; 13] {
    let mut b = [0u8; 13];
    b[0..4].copy_from_slice(&t.0.to_be_bytes());
    b[4..8].copy_from_slice(&t.1.to_be_bytes());
    b[8..10].copy_from_slice(&t.2.to_be_bytes());
    b[10..12].copy_from_slice(&t.3.to_be_bytes());
    b[12] = t.4;
    b
}

/// The 64-bit flow hash: two SplitMix64 finalization rounds over the
/// canonical tuple bytes. The low 32 bits index the first bucket, the
/// high 32 bits the second — one hash yields both choices, which is
/// what the GPU offload ships back per packet.
pub fn flow_hash(t: &FlowTuple) -> u64 {
    let b = tuple_bytes(t);
    let lo = u64::from_le_bytes(b[0..8].try_into().expect("fixed"));
    let hi = u64::from_le_bytes([b[8], b[9], b[10], b[11], b[12], 0, 0, 0]);
    let mut s = lo ^ 0x9E37_79B9_7F4A_7C15;
    let first = splitmix64(&mut s);
    s = first ^ hi;
    splitmix64(&mut s)
}

/// Hash a tuple already serialized as [`tuple_bytes`] — the function
/// the GPU kernel runs per thread (same rounds, same result).
pub fn flow_hash_bytes(b: &[u8; 13]) -> u64 {
    let lo = u64::from_le_bytes(b[0..8].try_into().expect("fixed"));
    let hi = u64::from_le_bytes([b[8], b[9], b[10], b[11], b[12], 0, 0, 0]);
    let mut s = lo ^ 0x9E37_79B9_7F4A_7C15;
    let first = splitmix64(&mut s);
    s = first ^ hi;
    splitmix64(&mut s)
}

/// Observable counters: the flow-cache gauges `trace_summary`
/// surfaces (occupancy is read off the cache itself).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlowCacheStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// New entries placed.
    pub inserts: u64,
    /// Inserts that refreshed an existing key.
    pub updates: u64,
    /// Entries evicted by LRU under capacity pressure.
    pub evictions: u64,
    /// Entries reclaimed past the idle timeout.
    pub expiries: u64,
    /// Total cuckoo relocations performed across all inserts.
    pub displacements: u64,
    /// Deepest kick chain any single insert needed.
    pub max_depth: u64,
}

/// One resident flow.
struct Entry<V> {
    hash: u64,
    key: FlowTuple,
    last_seen: Time,
    value: V,
}

/// What an insertion did (observability for callers that recycle
/// evicted state, e.g. the NAT port allocator).
pub struct Inserted<V> {
    /// The entry LRU-evicted to make room, if any.
    pub evicted: Option<(FlowTuple, V)>,
    /// Cuckoo relocations this insert performed.
    pub displaced: u32,
}

/// The deterministic cuckoo flow cache. See the crate docs for the
/// placement, eviction and expiry rules.
pub struct FlowCache<V> {
    slots: Vec<Option<Entry<V>>>,
    /// Bucket-index mask (`buckets - 1`, buckets a power of two).
    mask: usize,
    /// Idle timeout in virtual ns; `0` disables expiry.
    idle_ns: Time,
    occupancy: usize,
    stats: FlowCacheStats,
}

impl<V> FlowCache<V> {
    /// A cache with room for at least `capacity` entries (rounded up
    /// to a power-of-two bucket count) whose entries expire after
    /// `idle_ns` of virtual-clock inactivity (`0` = never).
    pub fn new(capacity: usize, idle_ns: Time) -> FlowCache<V> {
        let buckets = (capacity.div_ceil(WAYS)).next_power_of_two().max(2);
        let mut slots = Vec::new();
        slots.resize_with(buckets * WAYS, || None);
        FlowCache {
            slots,
            mask: buckets - 1,
            idle_ns,
            occupancy: 0,
            stats: FlowCacheStats::default(),
        }
    }

    /// Live entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Total slots (entries the table can hold at 100% load).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &FlowCacheStats {
        &self.stats
    }

    /// The configured idle timeout (virtual ns; `0` = never).
    pub fn idle_timeout(&self) -> Time {
        self.idle_ns
    }

    fn bucket1(&self, h: u64) -> usize {
        (h as usize) & self.mask
    }

    fn bucket2(&self, h: u64) -> usize {
        let b2 = ((h >> 32) as usize) & self.mask;
        let b1 = self.bucket1(h);
        if b2 == b1 {
            (b1 ^ 1) & self.mask
        } else {
            b2
        }
    }

    fn alt_bucket(&self, h: u64, b: usize) -> usize {
        let (b1, b2) = (self.bucket1(h), self.bucket2(h));
        if b == b1 {
            b2
        } else {
            b1
        }
    }

    fn expired(&self, e: &Entry<V>, now: Time) -> bool {
        self.idle_ns != 0 && now.saturating_sub(e.last_seen) > self.idle_ns
    }

    /// Look up `key` at virtual time `now`. A hit refreshes the
    /// entry's last-seen stamp; an entry past the idle timeout is
    /// reclaimed and reported as a miss.
    pub fn lookup(&mut self, key: &FlowTuple, now: Time) -> Option<&mut V> {
        self.lookup_prehash(flow_hash(key), key, now)
    }

    /// [`Self::lookup`] with the hash already computed (the GPU
    /// offload path: the kernel hashes, the host probes).
    pub fn lookup_prehash(&mut self, h: u64, key: &FlowTuple, now: Time) -> Option<&mut V> {
        self.stats.lookups += 1;
        for b in [self.bucket1(h), self.bucket2(h)] {
            for s in 0..WAYS {
                let idx = b * WAYS + s;
                let hit = matches!(&self.slots[idx],
                    Some(e) if e.hash == h && e.key == *key);
                if hit {
                    if self.expired(self.slots[idx].as_ref().expect("hit"), now) {
                        self.slots[idx] = None;
                        self.occupancy -= 1;
                        self.stats.expiries += 1;
                        self.stats.misses += 1;
                        return None;
                    }
                    self.stats.hits += 1;
                    let e = self.slots[idx].as_mut().expect("hit");
                    e.last_seen = now;
                    return Some(&mut e.value);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert (or refresh) `key` at virtual time `now`. Returns what
    /// happened: any LRU-evicted entry and the kick-chain depth used.
    pub fn insert(&mut self, key: FlowTuple, now: Time, value: V) -> Inserted<V> {
        self.insert_prehash(flow_hash(&key), key, now, value)
    }

    /// [`Self::insert`] with the hash already computed.
    pub fn insert_prehash(&mut self, h: u64, key: FlowTuple, now: Time, value: V) -> Inserted<V> {
        let (b1, b2) = (self.bucket1(h), self.bucket2(h));
        // Refresh an existing binding in place.
        for b in [b1, b2] {
            for s in 0..WAYS {
                let idx = b * WAYS + s;
                if matches!(&self.slots[idx], Some(e) if e.hash == h && e.key == key) {
                    let e = self.slots[idx].as_mut().expect("hit");
                    e.last_seen = now;
                    e.value = value;
                    self.stats.updates += 1;
                    return Inserted {
                        evicted: None,
                        displaced: 0,
                    };
                }
            }
        }
        let entry = Entry {
            hash: h,
            key,
            last_seen: now,
            value,
        };
        // Direct placement into an empty (or expired) slot.
        for b in [b1, b2] {
            if let Some(s) = self.free_slot(b, now) {
                self.slots[b * WAYS + s] = Some(entry);
                self.occupancy += 1;
                self.stats.inserts += 1;
                return Inserted {
                    evicted: None,
                    displaced: 0,
                };
            }
        }
        // Cuckoo: walk a bounded kick chain from each home bucket
        // (victim slot rotates with depth, so the choice is a pure
        // function of the chain position), then apply it in reverse —
        // no entry is ever homeless mid-insert.
        for start in [b1, b2] {
            if let Some((path, free)) = self.find_chain(start, now) {
                let depth = path.len() as u64;
                self.stats.displacements += depth;
                self.stats.max_depth = self.stats.max_depth.max(depth);
                let mut dst = free;
                for &(b, s) in path.iter().rev() {
                    let moved = self.slots[b * WAYS + s].take().expect("chain resident");
                    self.slots[dst] = Some(moved);
                    dst = b * WAYS + s;
                }
                self.slots[dst] = Some(entry);
                self.occupancy += 1;
                self.stats.inserts += 1;
                return Inserted {
                    evicted: None,
                    displaced: depth as u32,
                };
            }
        }
        // Both buckets full, no chain frees a slot: evict the
        // least-recently-seen candidate (ties break by bucket then
        // slot order — deterministic).
        let mut victim = b1 * WAYS;
        let mut oldest = Time::MAX;
        for b in [b1, b2] {
            for s in 0..WAYS {
                let idx = b * WAYS + s;
                if let Some(e) = &self.slots[idx] {
                    if e.last_seen < oldest {
                        oldest = e.last_seen;
                        victim = idx;
                    }
                }
            }
        }
        let old = self.slots[victim].replace(entry).expect("bucket full");
        self.stats.evictions += 1;
        self.stats.inserts += 1;
        Inserted {
            evicted: Some((old.key, old.value)),
            displaced: 0,
        }
    }

    /// First free slot in bucket `b`, reclaiming an expired resident
    /// if that is what frees it.
    fn free_slot(&mut self, b: usize, now: Time) -> Option<usize> {
        for s in 0..WAYS {
            let idx = b * WAYS + s;
            match &self.slots[idx] {
                None => return Some(s),
                Some(e) if self.expired(e, now) => {
                    self.slots[idx] = None;
                    self.occupancy -= 1;
                    self.stats.expiries += 1;
                    return Some(s);
                }
                Some(_) => {}
            }
        }
        None
    }

    /// Search a kick chain from bucket `start`: follow victims (slot
    /// `depth % WAYS` at each level) through their alternate buckets
    /// until one has a free slot, up to [`MAX_KICKS`] levels. Returns
    /// the chain and the terminal free slot index.
    fn find_chain(&mut self, start: usize, now: Time) -> Option<(Vec<(usize, usize)>, usize)> {
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut b = start;
        for depth in 0..MAX_KICKS {
            let s = depth % WAYS;
            let e = self.slots[b * WAYS + s].as_ref()?;
            let alt = self.alt_bucket(e.hash, b);
            path.push((b, s));
            if let Some(free) = self.free_slot(alt, now) {
                return Some((path, alt * WAYS + free));
            }
            b = alt;
        }
        None
    }

    /// Remove `key` if resident, returning its value — connection
    /// teardown (a NAT binding released on FIN/RST). Counted as
    /// neither an eviction nor an expiry: the flow ended, it was not
    /// displaced.
    pub fn remove(&mut self, key: &FlowTuple) -> Option<V> {
        let h = flow_hash(key);
        for b in [self.bucket1(h), self.bucket2(h)] {
            for s in 0..WAYS {
                let idx = b * WAYS + s;
                if matches!(&self.slots[idx], Some(e) if e.hash == h && e.key == *key) {
                    self.occupancy -= 1;
                    return self.slots[idx].take().map(|e| e.value);
                }
            }
        }
        None
    }

    /// Sweep the whole table, reclaiming every entry idle past the
    /// timeout at virtual time `now`. Returns how many were expired.
    /// O(capacity): callers run this at coarse intervals (or never —
    /// the lazy reclamation above is sufficient for correctness).
    pub fn expire_idle(&mut self, now: Time) -> u64 {
        if self.idle_ns == 0 {
            return 0;
        }
        let mut n = 0;
        for idx in 0..self.slots.len() {
            if matches!(&self.slots[idx], Some(e) if self.expired(e, now)) {
                self.slots[idx] = None;
                self.occupancy -= 1;
                n += 1;
            }
        }
        self.stats.expiries += n;
        n
    }

    /// Drop every resident entry — the fault model's flow-state loss
    /// (a faulted shard's table is gone; flows must re-establish).
    /// Returns how many entries were lost. Statistics survive: the
    /// ledger of what happened is not part of the lost state.
    pub fn flush(&mut self) -> u64 {
        let mut n = 0;
        for slot in &mut self.slots {
            if slot.take().is_some() {
                n += 1;
            }
        }
        self.occupancy = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowTuple {
        (i, !i, (i % 50_000) as u16, 80, 17)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c: FlowCache<u32> = FlowCache::new(1024, 0);
        for i in 0..500 {
            c.insert(key(i), 10, i);
        }
        assert_eq!(c.occupancy(), 500);
        for i in 0..500 {
            assert_eq!(c.lookup(&key(i), 20).copied(), Some(i));
        }
        assert_eq!(c.stats().hits, 500);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn idle_entries_expire_on_touch_and_on_sweep() {
        let mut c: FlowCache<u32> = FlowCache::new(64, 100);
        c.insert(key(1), 0, 1);
        c.insert(key(2), 0, 2);
        // Within the timeout: hit refreshes the stamp.
        assert!(c.lookup(&key(1), 90).is_some());
        // key(1) refreshed at 90 survives t=150; key(2) (idle since 0)
        // does not.
        assert!(c.lookup(&key(1), 150).is_some());
        assert!(c.lookup(&key(2), 150).is_none());
        assert_eq!(c.stats().expiries, 1);
        // Sweep reclaims the rest once everything is idle.
        assert_eq!(c.expire_idle(1_000), 1);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn capacity_pressure_evicts_lru_not_random() {
        // Tiny table: 2 buckets * 4 ways = 8 slots.
        let mut c: FlowCache<u32> = FlowCache::new(8, 0);
        for i in 0..64 {
            c.insert(key(i), Time::from(i), i);
        }
        let s = *c.stats();
        assert_eq!(s.inserts, 64);
        assert!(s.evictions > 0, "a full table must evict");
        assert_eq!(c.occupancy() as u64 + s.evictions, 64);
        // Survivors must be more recent than every evicted stamp set:
        // the newest key always survives its own insert.
        assert!(c.lookup(&key(63), 64).is_some());
    }

    #[test]
    fn cuckoo_chains_raise_load_factor_past_direct_placement() {
        let mut c: FlowCache<u32> = FlowCache::new(4096, 0);
        let cap = c.capacity();
        let target = cap * 85 / 100;
        for i in 0..target as u32 {
            c.insert(key(i), 5, i);
        }
        let s = *c.stats();
        assert_eq!(
            c.occupancy() as u64 + s.evictions,
            target as u64,
            "every insert is resident or accounted as an eviction"
        );
        assert!(s.displacements > 0, "85% load must exercise the kick chain");
        assert!(s.max_depth >= 1 && s.max_depth <= MAX_KICKS as u64);
        // The overwhelming majority must still be resident at 85%.
        assert!(
            c.occupancy() >= target * 95 / 100,
            "occupancy {} of {target}",
            c.occupancy()
        );
    }

    #[test]
    fn flush_loses_state_but_not_the_ledger() {
        let mut c: FlowCache<u32> = FlowCache::new(256, 0);
        for i in 0..100 {
            c.insert(key(i), 1, i);
        }
        let inserts_before = c.stats().inserts;
        assert_eq!(c.flush(), 100);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().inserts, inserts_before);
        assert!(c.lookup(&key(5), 2).is_none());
        // Flows re-establish cleanly.
        c.insert(key(5), 3, 5);
        assert_eq!(c.lookup(&key(5), 3).copied(), Some(5));
    }

    #[test]
    fn hash_matches_byte_serialized_form() {
        for i in [0u32, 1, 0xFFFF_FFFF, 0x0A00_0001] {
            let t = key(i);
            assert_eq!(flow_hash(&t), flow_hash_bytes(&tuple_bytes(&t)));
        }
    }

    #[test]
    fn operations_are_deterministic() {
        let run = || {
            let mut c: FlowCache<u64> = FlowCache::new(512, 1_000);
            let mut log = Vec::new();
            for i in 0..2_000u64 {
                let k = key((i % 700) as u32);
                let t = i * 13;
                if i % 3 == 0 {
                    let r = c.insert(k, t, i);
                    log.push((r.evicted.map(|(k, _)| k), r.displaced));
                } else {
                    log.push((c.lookup(&k, t).map(|_| k), 0));
                }
            }
            (log, *c.stats(), c.occupancy())
        };
        assert_eq!(run(), run());
    }
}
