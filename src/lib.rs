//! # packetshader — GPU-accelerated software router (SIGCOMM 2010) in Rust
//!
//! A faithful, fully functional reproduction of *PacketShader: a
//! GPU-Accelerated Software Router* (Han, Jang, Park, Moon) built as
//! an execution-driven simulation: the data plane — packet parsing,
//! DIR-24-8 and binary-search-on-prefix-length lookups, OpenFlow
//! matching, AES-128-CTR + HMAC-SHA1 ESP — is real Rust operating on
//! real packet bytes; the hardware the paper ran on (GTX480 GPUs,
//! 82599 NICs, the dual-IOH Nehalem fabric) is modelled by calibrated
//! discrete-event components, so throughput and latency come from a
//! virtual clock.
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `ps-sim` | event queue, virtual time, statistics |
//! | [`net`] | `ps-net` | Ethernet/IPv4/IPv6/UDP/TCP/ESP wire formats |
//! | [`hw`] | `ps-hw` | CPU/NUMA/PCIe/IOH models + testbed constants |
//! | [`gpu`] | `ps-gpu` | SIMT GPU simulator, kernels, streams |
//! | [`nic`] | `ps-nic` | rings, RSS (Toeplitz), ports |
//! | [`lookup`] | `ps-lookup` | DIR-24-8, Waldvogel LPM, synthetic tables |
//! | [`crypto`] | `ps-crypto` | AES-128-CTR, SHA-1, HMAC, ESP transforms |
//! | [`openflow`] | `ps-openflow` | exact + wildcard flow tables |
//! | [`io`] | `ps-io` | huge packet buffer, batched I/O cost models |
//! | [`core`] | `ps-core` | the PacketShader framework + six applications |
//! | [`flow`] | `ps-flow` | deterministic cuckoo flow cache for the stateful NFs |
//! | [`pktgen`] | `ps-pktgen` | traffic generator / latency sink |
//! | [`rng`] | `ps-rng` | deterministic RNG (SplitMix64 + xoshiro256**) |
//! | [`check`] | `ps-check` | seeded property-testing harness |
//! | [`trace`] | `ps-trace` | virtual-time pipeline tracing (see OBSERVABILITY.md) |
//! | [`fault`] | `ps-fault` | seeded fault injection + graceful degradation |
//!
//! ## Quickstart
//!
//! ```
//! use packetshader::core::apps::Ipv4App;
//! use packetshader::core::{Router, RouterConfig};
//! use packetshader::lookup::route::Route4;
//! use packetshader::pktgen::TrafficSpec;
//! use packetshader::sim::MILLIS;
//!
//! // A routing table whose next hops are output ports.
//! let routes = vec![
//!     Route4::new(0x0A000000, 8, 1),  // 10/8 -> port 1
//!     Route4::new(0x00000000, 0, 0),  // default -> port 0
//! ];
//! let app = Ipv4App::new(&routes);
//!
//! // Run the paper's CPU-only configuration for 1 ms of virtual time
//! // at 4 Gbps of 64 B packets.
//! let report = Router::run(
//!     RouterConfig::paper_cpu(),
//!     app,
//!     TrafficSpec::ipv4_64b(4.0, 42),
//!     MILLIS,
//! );
//! assert!(report.delivery_ratio() > 0.99);
//! ```

pub use ps_check as check;
pub use ps_core as core;
pub use ps_crypto as crypto;
pub use ps_fault as fault;
pub use ps_flow as flow;
pub use ps_gpu as gpu;
pub use ps_hw as hw;
pub use ps_io as io;
pub use ps_lookup as lookup;
pub use ps_net as net;
pub use ps_nic as nic;
pub use ps_openflow as openflow;
pub use ps_pktgen as pktgen;
pub use ps_rng as rng;
pub use ps_sim as sim;
pub use ps_trace as trace;
