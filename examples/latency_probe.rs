//! Figure 12 in miniature: round-trip latency vs offered load for
//! IPv6 forwarding, comparing unbatched CPU, batched CPU and CPU+GPU.
//!
//! ```sh
//! cargo run --release --example latency_probe
//! ```

use packetshader::core::apps::Ipv6App;
use packetshader::core::{Router, RouterConfig};
use packetshader::lookup::route::Route6;
use packetshader::lookup::synth;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::sim::MILLIS;

fn app() -> Ipv6App {
    let mut routes: Vec<Route6> = (0..8u16)
        .map(|i| Route6::new((0b001u128 << 125) | (u128::from(i) << 122), 6, i))
        .collect();
    routes.extend(synth::random_ipv6(20_000, 8, 5));
    Ipv6App::new(&routes)
}

fn run(cfg: RouterConfig, gbps: f64) -> (f64, u64) {
    let spec = TrafficSpec {
        kind: TrafficKind::Ipv6Udp,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    };
    let r = Router::run(cfg, app(), spec, 2 * MILLIS);
    (r.latency.mean() / 1000.0, r.latency.p99() / 1000)
}

fn main() {
    let mut nobatch = RouterConfig::paper_cpu();
    nobatch.io.batch_cap = 1;

    println!(
        "{:>8} | {:>22} | {:>22} | {:>22}",
        "offered", "CPU batch=1 (us)", "CPU batched (us)", "CPU+GPU (us)"
    );
    println!(
        "{:>8} | {:>10} {:>11} | {:>10} {:>11} | {:>10} {:>11}",
        "", "mean", "p99", "mean", "p99", "mean", "p99"
    );
    for gbps in [1.0, 4.0, 8.0, 16.0, 24.0] {
        let (m1, p1) = run(nobatch, gbps);
        let (m2, p2) = run(RouterConfig::paper_cpu(), gbps);
        let (m3, p3) = run(RouterConfig::paper_gpu(), gbps);
        println!("{gbps:>7}G | {m1:>10.0} {p1:>11} | {m2:>10.0} {p2:>11} | {m3:>10.0} {p3:>11}");
    }
    println!("\n(batching lowers latency under load by raising the forwarding rate — §6.4;");
    println!(" the GPU path stays flat while the CPU paths saturate and queue)");
}
