//! A full 8-port IPv4 router with a RouteViews-shaped table under
//! saturating load — the Figure 11(a) experiment in miniature, with a
//! CPU-only vs CPU+GPU comparison and per-drop accounting.
//!
//! ```sh
//! cargo run --release --example ipv4_router [prefixes] [gbps]
//! ```

use packetshader::core::apps::Ipv4App;
use packetshader::core::{Router, RouterConfig};
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;

fn table(prefixes: usize) -> Vec<Route4> {
    // Two /1 provider-default routes guarantee coverage; the synthetic
    // RouteViews-shaped set provides realistic lookup behaviour.
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(prefixes, 8, 2010));
    routes
}

fn main() {
    let mut args = std::env::args().skip(1);
    let prefixes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let gbps: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(80.0);

    println!("building DIR-24-8 table from {prefixes} prefixes...");
    let routes = table(prefixes);

    for (label, cfg) in [
        ("CPU-only", RouterConfig::paper_cpu()),
        ("CPU+GPU ", RouterConfig::paper_gpu()),
    ] {
        let app = Ipv4App::new(&routes);
        let report = Router::run(cfg, app, TrafficSpec::ipv4_64b(gbps, 1), 2 * MILLIS);
        println!(
            "{label}: {:.1} / {:.1} Gbps, NIC+ring drops {}, app drops {}, \
             slow path {}, p50 {} us, p99 {} us",
            report.out_gbps(),
            report.in_gbps(),
            report.rx_drops,
            report.app_drops,
            report.slow_path,
            report.latency.p50() / 1000,
            report.p99_us(),
        );
    }
}

trait P99 {
    fn p99_us(&self) -> u64;
}

impl P99 for packetshader::core::RouterReport {
    fn p99_us(&self) -> u64 {
        self.latency.p99() / 1000
    }
}
