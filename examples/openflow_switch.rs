//! An OpenFlow 0.8.9 switch: install exact and wildcard flows, send
//! packets through the real matching pipeline, and inspect per-flow
//! counters — then run the GPU-offloaded switch under load.
//!
//! ```sh
//! cargo run --release --example openflow_switch
//! ```

use packetshader::core::apps::OpenFlowApp;
use packetshader::core::{App, Router, RouterConfig};
use packetshader::io::Packet;
use packetshader::net::ethernet::MacAddr;
use packetshader::net::{FlowKey, PacketBuilder};
use packetshader::nic::port::PortId;
use packetshader::openflow::wildcard::wc;
use packetshader::openflow::{Action, OpenFlowSwitch, WildcardEntry};
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;

fn frame(dst: &str, dport: u16) -> Vec<u8> {
    PacketBuilder::udp_v4(
        MacAddr::local(1),
        MacAddr::local(2),
        "192.168.1.50".parse().unwrap(),
        dst.parse().unwrap(),
        5000,
        dport,
        64,
    )
}

fn main() {
    let mut sw = OpenFlowSwitch::new();

    // An exact-match flow: this 10-tuple -> port 7.
    let key = FlowKey::extract(0, &frame("10.0.0.1", 80)).expect("valid frame");
    sw.add_exact(key, Action::Output(7));

    // Wildcard: any DNS traffic -> port 3; anything to 10/8 -> drop.
    sw.add_wildcard(WildcardEntry {
        fields: wc::TP_DST | wc::NW_PROTO,
        priority: 100,
        key: FlowKey {
            tp_dst: 53,
            nw_proto: 17,
            ..FlowKey::default()
        },
        nw_src_mask: 0,
        nw_dst_mask: 0,
        action: Action::Output(3),
    });
    sw.add_wildcard(WildcardEntry {
        fields: wc::NW_DST,
        priority: 10,
        key: FlowKey {
            nw_dst: u32::from_be_bytes([10, 0, 0, 0]),
            ..FlowKey::default()
        },
        nw_src_mask: 0,
        nw_dst_mask: 0xFF00_0000,
        action: Action::Drop,
    });

    let mut app = OpenFlowApp::new(sw);
    println!("matching decisions:");
    for (dst, dport, label) in [
        ("10.0.0.1", 80, "exact flow       "),
        ("10.5.5.5", 53, "DNS wildcard     "),
        ("10.5.5.5", 99, "10/8 drop rule   "),
        ("8.8.8.8", 99, "table miss       "),
    ] {
        let mut pkts = vec![Packet::new(0, frame(dst, dport), PortId(0), 0)];
        app.pre_shade(&mut pkts);
        app.process_cpu(&mut pkts);
        println!(
            "  {label} {dst:<10} dport {dport:<3} -> {:?}",
            pkts.first().map(|p| p.out_port)
        );
    }
    println!(
        "exact flow counters: {:?}",
        app.switch.exact.stats(&key).expect("installed")
    );
    println!("controller misses: {}", app.switch.misses);

    // Under load: 32K exact entries + 32 wildcards, the NetFPGA
    // comparison configuration of §6.3 (paper: ~32 Gbps).
    let mut spec = TrafficSpec::ipv4_64b(80.0, 42);
    spec.flows = Some(32_768);
    println!("\nbuilding the 32K+32 configuration...");
    let mut sw = OpenFlowSwitch::new();
    let mut probe = packetshader::pktgen::Generator::new(spec);
    for i in 0..32_768u32 {
        let (_, p) = probe.next_packet();
        let k = FlowKey::extract(p.in_port.0, &p.data).expect("valid");
        sw.add_exact(k, Action::Output((i % 8) as u16));
    }
    for i in 0..32u16 {
        sw.add_wildcard(WildcardEntry {
            fields: wc::NW_DST,
            priority: i,
            key: FlowKey {
                nw_dst: u32::from(i) << 29,
                ..FlowKey::default()
            },
            nw_src_mask: 0,
            nw_dst_mask: 0xE000_0000,
            action: Action::Output(i % 8),
        });
    }
    let report = Router::run(
        RouterConfig::paper_gpu(),
        OpenFlowApp::new(sw),
        spec,
        2 * MILLIS,
    );
    println!(
        "GPU-offloaded switch: {:.1} Gbps of 64 B flows (paper: ~32), p50 {} us",
        report.out_gbps(),
        report.latency.p50() / 1000
    );
}
