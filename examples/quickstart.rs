//! Quickstart: build a small IPv4 router, push a handful of packets
//! through it by hand, then run it under load in both CPU-only and
//! CPU+GPU modes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use packetshader::core::apps::Ipv4App;
use packetshader::core::{App, Mode, Router, RouterConfig};
use packetshader::io::Packet;
use packetshader::lookup::route::Route4;
use packetshader::net::ethernet::MacAddr;
use packetshader::net::PacketBuilder;
use packetshader::nic::port::PortId;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;

fn main() {
    // 1. A forwarding table: hops are output-port indices.
    let routes = vec![
        Route4::new(u32::from_be_bytes([10, 0, 0, 0]), 8, 1), // 10/8      -> port 1
        Route4::new(u32::from_be_bytes([10, 9, 0, 0]), 16, 2), // 10.9/16  -> port 2
        Route4::new(0, 0, 0),                                 // default   -> port 0
    ];
    let mut app = Ipv4App::new(&routes);

    // 2. Hand-forward three packets through the application's real
    //    data plane (no simulation involved).
    println!("manual forwarding decisions:");
    for dst in ["10.1.2.3", "10.9.8.7", "192.0.2.1"] {
        let frame = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            "198.18.0.1".parse().unwrap(),
            dst.parse().unwrap(),
            1234,
            80,
            64,
        );
        let mut pkts = vec![Packet::new(0, frame, PortId(5), 0)];
        app.pre_shade(&mut pkts);
        app.process_cpu(&mut pkts);
        println!("  {dst:<12} -> {:?}", pkts[0].out_port);
    }

    // 3. Same router under 20 Gbps of random 64 B traffic for 2 ms of
    //    virtual time, in both execution modes.
    for (label, cfg) in [
        ("CPU-only", RouterConfig::paper_cpu()),
        ("CPU+GPU ", RouterConfig::paper_gpu()),
    ] {
        let app = Ipv4App::new(&routes);
        let report = Router::run(cfg, app, TrafficSpec::ipv4_64b(20.0, 7), 2 * MILLIS);
        println!(
            "{label}: delivered {:.1} Gbps of {:.1} offered, p50 RTT {} us{}",
            report.out_gbps(),
            report.in_gbps(),
            report.latency.p50() / 1000,
            if cfg.mode == Mode::CpuGpu {
                format!(
                    ", {} GPU kernel launches (mean batch {:.0} packets)",
                    report.gpu_kernels, report.mean_shade_batch
                )
            } else {
                String::new()
            }
        );
    }
}
