//! An ESP tunnel gateway: encrypts traffic on the GPU, then *proves*
//! the output is real by decrypting a sample of delivered packets
//! with the peer's security association.
//!
//! ```sh
//! cargo run --release --example ipsec_gateway
//! ```

use packetshader::core::apps::IpsecApp;
use packetshader::core::{App, Router, RouterConfig};
use packetshader::crypto::esp::decrypt_tunnel;
use packetshader::io::Packet;
use packetshader::net::ethernet::{EthernetFrame, MacAddr};
use packetshader::net::ipv4::Ipv4Packet;
use packetshader::net::PacketBuilder;
use packetshader::nic::port::PortId;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;

const AES_KEY: [u8; 16] = [0x42; 16];
const NONCE: u32 = 0xD00D;
const HMAC_KEY: &[u8] = b"example-gateway-hmac-key";

fn main() {
    // 1. Functional proof: one packet through the GPU shading path,
    //    decrypted by the peer.
    let mut gw = IpsecApp::new(AES_KEY, NONCE, HMAC_KEY);
    let mut eng = packetshader::gpu::GpuEngine::new(
        packetshader::gpu::GpuDevice::gtx480_with_mem(64 << 20),
        packetshader::hw::pcie::PcieModel::new(packetshader::hw::spec::PcieSpec::dual_ioh_x16()),
    );
    let mut ioh =
        packetshader::hw::ioh::Ioh::new(packetshader::hw::spec::IohSpec::intel_5520_dual());
    gw.setup_gpu(0, &mut eng);

    let plain = PacketBuilder::udp_v4(
        MacAddr::local(1),
        MacAddr::local(2),
        "10.0.0.1".parse().unwrap(),
        "10.0.0.2".parse().unwrap(),
        1000,
        2000,
        256,
    );
    let inner_before = plain[14..].to_vec();
    let mut pkts = vec![Packet::new(0, plain, PortId(0), 0)];
    gw.pre_shade(&mut pkts);
    gw.shade(0, &mut eng, &mut ioh, 0, &mut pkts);

    let eth = EthernetFrame::new_checked(&pkts[0].data[..]).expect("outer frame");
    let ip = Ipv4Packet::new_checked(eth.payload()).expect("outer IP");
    let peer = gw.peer_sa();
    let recovered = decrypt_tunnel(&peer, ip.payload()).expect("ICV verifies, padding intact");
    assert_eq!(recovered, inner_before);
    println!(
        "GPU-encrypted ESP packet verified: {} B inner -> {} B on the wire, \
         decrypts bit-exactly at the peer",
        inner_before.len(),
        pkts[0].data.len()
    );

    // 2. The gateway under load (Figure 11(d) at one size).
    let mut cfg = RouterConfig::paper_gpu();
    cfg.concurrent_copy = true; // §5.4: streams pay off for IPsec
    let spec = TrafficSpec {
        frame_len: 512,
        ..TrafficSpec::ipv4_64b(40.0, 9)
    };
    let report = Router::run(
        cfg,
        IpsecApp::new(AES_KEY, NONCE, HMAC_KEY),
        spec,
        2 * MILLIS,
    );
    println!(
        "under load: {:.1} Gbps of 512 B traffic encrypted (input metric), \
         {} kernel launches, p50 RTT {} us",
        report.out_gbps_input_sized(512),
        report.gpu_kernels,
        report.latency.p50() / 1000
    );
}
